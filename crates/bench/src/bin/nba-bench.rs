//! Continuous-benchmarking CLI: canonical `BENCH_*.json` artifacts and the
//! regression gate.
//!
//! Usage:
//!
//! * `nba-bench run <app> [--out PATH] [--mode alb|cpu|gpu|<w>] [--faults SPEC]`
//!   Runs one app (`ipv4` | `ipv6` | `ipsec` | `ids` | `nat`) on the
//!   simulated paper testbed and writes a versioned [`BenchReport`] to
//!   `BENCH_<app>.json` (or `--out`). `NBA_QUICK=1` shortens the
//!   measurement windows for CI smoke runs. The default `alb` mode runs
//!   the adaptive balancer so the artifact captures convergence stats.
//!   `--faults` takes a seeded fault plan (see `FaultPlan::parse`, e.g.
//!   `seed=7,transient=0.2,die_at_ms=30,revive_at_ms=60`, or the worker
//!   drills `worker_kill=1@50000` / `worker_stall=1@50000+20`); the
//!   artifact's `faults` section records what happened. `--shed` sets the
//!   live runtime's overload policy
//!   (`policy=drop_tail|priority|probabilistic,occupancy=R,slo=on|off`).
//! * `nba-bench compare <baseline.json> <current.json>
//!   [--tol-throughput R] [--tol-latency R] [--tol-w A]`
//!   Diffs two reports under per-metric tolerances, prints the verdict
//!   table, and exits 1 on regression. Gates are one-sided — improvements
//!   never fail.
//! * `nba-bench top <addr> [--interval MS] [--count N]`
//!   Polls a running instance's stats endpoint (`--stats-addr` on `run`)
//!   and prints a per-shard terminal snapshot: ring occupancy, high
//!   water, `w`, drops, latency percentiles, SLO burn rates, and
//!   cost-model drift gauges. (`--interval-ms` is accepted as an alias.)
//! * `nba-bench explain <decisions.jsonl>`
//!   Renders a balancer decision log (written by `run --audit N
//!   --audit-out PATH`) as a human-readable timeline, after verifying the
//!   log replays bit-exactly through a fresh balancer.
//!
//! Observability flags on `run`: `--trace N` sizes the batch-lifecycle
//! trace rings (0 = off, the default — tracing-off runs are bit-identical
//! to a build without telemetry), `--stats-addr HOST:PORT` serves the
//! live stats endpoint during live runs, `--flight-dir DIR` writes
//! flight-recorder post-mortem dumps there. `--audit N` turns the
//! decision-audit plane fully on (decision log of N records, per-stage
//! offload histograms, cost-model drift detection); `--audit-out PATH`
//! writes the decision log as JSONL for `explain`; `--slo SPEC` declares
//! latency/throughput budgets (`p99=500us,mpps=1.5,budget=0.05`) burned
//! down window by window and scored in the artifact's `slo` section.
//!
//! Exit codes: 0 ok, 1 regression, 2 usage/parse error.
//!
//! The DES runtime is deterministic, so two runs of the same binary and
//! config produce identical reports — baselines under `bench/baselines/`
//! are machine-independent.

use nba_apps::stateful::NatConfig;
use nba_apps::{pipelines, AppConfig};
use nba_bench::report::{compare, BenchReport, ScalePoint, Tolerances};
use nba_core::lb::{self, AlbConfig, BalancerFactory, LoadBalancer, SharedBalancer};
use nba_core::runtime::live::{self, LiveConfig};
use nba_core::runtime::{des, traffic_per_port, PipelineBuilder, RuntimeConfig};
use nba_io::{IpVersion, L4Proto, SizeDist, TrafficConfig};
use nba_sim::topology::{GpuSpec, PortSpec, SocketSpec};
use nba_sim::{Time, Topology};

fn usage() -> ! {
    eprintln!(
        "usage:\n  nba-bench run <ipv4|ipv6|ipsec|ids|nat> [--out PATH] [--mode alb|cpu|gpu|<w>] [--faults SPEC] [--workers N,M,..] [--runtime des|live] [--trace N] [--stats-addr HOST:PORT] [--flight-dir DIR] [--audit N] [--audit-out PATH] [--slo SPEC] [--shed SPEC]\n  nba-bench compare <baseline.json> <current.json> [--tol-throughput R] [--tol-latency R] [--tol-w A]\n  nba-bench top <addr> [--interval MS] [--count N]\n  nba-bench explain <decisions.jsonl>"
    );
    std::process::exit(2);
}

/// Positional arguments: everything that is neither a `--flag` nor the
/// value of the space-separated `--flag value` form (every flag here
/// takes a value, so the token after a `--flag` belongs to it).
fn positionals(args: &[String]) -> Vec<&str> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
        } else if let Some(flag) = a.strip_prefix("--") {
            skip = !flag.contains('=');
        } else {
            out.push(a.as_str());
        }
    }
    out
}

/// True when `NBA_QUICK` asks for shortened smoke windows.
fn quick() -> bool {
    std::env::var("NBA_QUICK").is_ok_and(|v| v != "0")
}

/// The canonical benchmark configuration. Quick mode shrinks the windows
/// (and is recorded in the artifact, so `compare` warns when a quick run
/// is diffed against a full baseline).
fn bench_cfg(q: bool) -> RuntimeConfig {
    let (warmup, measure) = if q {
        (Time::from_ms(6), Time::from_ms(20))
    } else {
        (Time::from_ms(10), Time::from_ms(60))
    };
    RuntimeConfig {
        warmup,
        measure,
        ..RuntimeConfig::default()
    }
}

/// Resolves an app name to its pipeline builder and IP version.
fn pipeline_for(app: &str, a: &AppConfig) -> Option<(PipelineBuilder, bool)> {
    Some(match app {
        "ipv4" | "v4" => (pipelines::ipv4_router(a), false),
        "ipv6" | "v6" => (pipelines::ipv6_router(a), true),
        "ipsec" => (pipelines::ipsec_gateway(a), false),
        "ids" => (pipelines::ids(a).0, false),
        // The stateful NAT44 app: per-worker flow shards behind the
        // default table geometry. Its artifact carries the schema-v5
        // `flows` section (live occupancy, evictions, hygiene drops).
        "nat" => (pipelines::nat44(&NatConfig::default()), false),
        _ => return None,
    })
}

/// The scaled adaptive balancer used for benchmark artifacts — same
/// algorithm as the paper's, time constants shrunk to converge within the
/// simulated horizon (see EXPERIMENTS.md).
fn balancer_for(mode: &str) -> Option<SharedBalancer> {
    Some(match mode {
        "alb" => lb::shared(Box::new(lb::Adaptive::new(AlbConfig {
            delta: 0.08,
            update_interval: Time::from_ms(4),
            avg_window: 2,
            min_wait: 0,
            max_wait: 2,
            initial_w: 0.5,
        }))),
        "cpu" => lb::shared(Box::new(lb::CpuOnly)),
        "gpu" => lb::shared(Box::new(lb::GpuOnly)),
        w => lb::shared(Box::new(lb::FixedFraction::new(w.parse().ok()?))),
    })
}

/// One fresh balancer instance per call — the per-worker form of
/// [`balancer_for`], used by the sharded live runtime (`w` per worker).
fn balancer_factory_for(mode: &str) -> Option<BalancerFactory> {
    let make: Box<dyn Fn() -> Box<dyn LoadBalancer> + Send + Sync> = match mode {
        "alb" => Box::new(|| {
            Box::new(lb::Adaptive::new(AlbConfig {
                delta: 0.08,
                update_interval: Time::from_ms(4),
                avg_window: 2,
                min_wait: 0,
                max_wait: 2,
                initial_w: 0.5,
            }))
        }),
        "cpu" => Box::new(|| Box::new(lb::CpuOnly)),
        "gpu" => Box::new(|| Box::new(lb::GpuOnly)),
        w => {
            let w: f64 = w.parse().ok()?;
            if !(0.0..=1.0).contains(&w) {
                return None;
            }
            Box::new(move || Box::new(lb::FixedFraction::new(w)))
        }
    };
    Some(lb::replicated(move || make()))
}

/// The DES sweep machine: one socket with exactly `workers` worker cores
/// (+1 for the device thread), one GPU, four 10 GbE ports — ports fixed
/// across counts so the offered load stays constant and only the worker
/// count varies (the paper's Figure 8 axis).
fn sweep_topology(workers: usize) -> Topology {
    Topology {
        sockets: vec![SocketSpec {
            cores: workers as u32 + 1,
        }],
        gpus: vec![GpuSpec {
            name: "GTX 680".to_owned(),
            socket: 0,
        }],
        ports: (0..4)
            .map(|_| PortSpec {
                speed_gbps: 10.0,
                socket: 0,
            })
            .collect(),
    }
}

/// Runs the throughput-vs-workers sweep on the deterministic simulator.
fn des_sweep(
    counts: &[usize],
    cfg: &RuntimeConfig,
    pipeline: &PipelineBuilder,
    mode: &str,
    traffic: &TrafficConfig,
) -> Vec<ScalePoint> {
    counts
        .iter()
        .map(|&n| {
            let cfg = RuntimeConfig {
                topology: sweep_topology(n),
                workers_per_socket: n as u32,
                ..cfg.clone()
            };
            let balancer = balancer_for(mode).expect("mode validated earlier");
            let traffic = traffic_per_port(&cfg.topology, traffic);
            let r = des::run(&cfg, pipeline, &balancer, &traffic);
            println!(
                "  des workers={n}: {:.2} Gbps ({:.2} Mpps)",
                r.tx_gbps,
                r.tx_mpps()
            );
            ScalePoint {
                workers: n as u64,
                tx_mpps: r.tx_mpps(),
                tx_gbps: r.tx_gbps,
            }
        })
        .collect()
}

/// Observability knobs forwarded from the CLI into the runtimes.
#[derive(Default)]
struct ObsOpts {
    /// Trace ring capacity per worker (0 = tracing off).
    trace: usize,
    /// Serve the in-flight stats endpoint here during live runs.
    stats_addr: Option<String>,
    /// Write flight-recorder post-mortem dumps into this directory.
    flight_dir: Option<std::path::PathBuf>,
    /// Declared SLO budgets, burned down by live sweeps too (the DES
    /// artifact run reads them from `RuntimeConfig`).
    slo: Option<nba_core::audit::SloConfig>,
    /// Overload-shedding policy for live runs (off by default).
    shed: nba_core::ShedConfig,
}

/// Runs the sweep on the live runtime: real threads, one RSS-sharded
/// worker (with its own balancer) per count.
fn live_sweep(
    counts: &[usize],
    q: bool,
    pipeline: &PipelineBuilder,
    mode: &str,
    traffic: &TrafficConfig,
    fault: &nba_core::FaultConfig,
    obs: &ObsOpts,
) -> Option<Vec<ScalePoint>> {
    let duration = std::time::Duration::from_millis(if q { 200 } else { 1000 });
    counts
        .iter()
        .map(|&n| {
            let cfg = LiveConfig {
                workers: n,
                duration,
                traffic: traffic.clone(),
                fault: fault.clone(),
                telemetry: nba_core::TelemetryConfig {
                    trace_capacity: obs.trace,
                    ..nba_core::TelemetryConfig::default()
                },
                flight: nba_core::FlightConfig {
                    dir: obs.flight_dir.clone(),
                    ..nba_core::FlightConfig::default()
                },
                stats_addr: obs.stats_addr.clone(),
                slo: obs.slo.clone(),
                shed: obs.shed,
                ..LiveConfig::default()
            };
            let factory = balancer_factory_for(mode)?;
            let r = live::run_sharded(&cfg, pipeline, &factory);
            println!(
                "  live workers={n}: {:.2} Gbps ({:.2} Mpps)",
                r.gbps, r.mpps
            );
            // The self-healing ledger, when anything happened: worker
            // drills, re-steers, sheds, and what the recovery cost.
            let h = &r.health;
            if !h.is_clean() {
                println!(
                    "    health: {} transitions, respawns {}, resteers {} ({} buckets), \
                     shed {}, lost in-ring {} in-flight {}",
                    h.log.events.len(),
                    h.stats.respawns,
                    h.stats.resteers,
                    h.stats.buckets_moved,
                    h.stats.shed_total(),
                    h.stats.lost_in_ring,
                    h.stats.lost_in_flight,
                );
            }
            Some(ScalePoint {
                workers: n as u64,
                tx_mpps: r.mpps,
                tx_gbps: r.gbps,
            })
        })
        .collect::<Option<Vec<_>>>()
}

/// The live-runtime scaling acceptance check: with enough host cores,
/// four workers must at least double one worker's throughput. Returns
/// `false` on failure; skipped (with a note) on small hosts, where the
/// OS would serialize the threads anyway.
fn check_live_speedup(series: &[ScalePoint]) -> bool {
    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let (Some(one), Some(four)) = (
        series.iter().find(|p| p.workers == 1),
        series.iter().find(|p| p.workers == 4),
    ) else {
        return true;
    };
    if cpus < 4 {
        println!("scaling check skipped: host has {cpus} CPUs (need >= 4 for the live(4) >= 2x live(1) gate)");
        return true;
    }
    let ratio = four.tx_mpps / one.tx_mpps.max(f64::MIN_POSITIVE);
    println!("live(4)/live(1) speedup: {ratio:.2}x (gate: >= 2.0)");
    if ratio < 2.0 {
        eprintln!(
            "scaling regression: live(4) = {:.2} Mpps < 2x live(1) = {:.2} Mpps",
            four.tx_mpps, one.tx_mpps
        );
        return false;
    }
    true
}

fn cmd_run(args: &[String]) -> i32 {
    let Some(&app) = positionals(args).first() else {
        usage();
    };
    let opt = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| {
                args.iter()
                    .find_map(|a| a.strip_prefix(&format!("{name}=")).map(str::to_string))
            })
    };
    let mode = opt("--mode").unwrap_or_else(|| "alb".to_string());
    // Canonical app name so ipv4 and v4 produce the same artifact.
    let app = match app {
        "v4" => "ipv4",
        "v6" => "ipv6",
        other => other,
    };
    let out_path = opt("--out").unwrap_or_else(|| format!("BENCH_{app}.json"));

    let q = quick();
    let mut cfg = bench_cfg(q);
    let mut obs = ObsOpts {
        stats_addr: opt("--stats-addr"),
        flight_dir: opt("--flight-dir").map(std::path::PathBuf::from),
        ..ObsOpts::default()
    };
    if let Some(n) = opt("--trace") {
        match n.parse::<usize>() {
            Ok(cap) => obs.trace = cap,
            Err(_) => {
                eprintln!("--trace: expected a ring capacity, got '{n}'");
                return 2;
            }
        }
    }
    // Tracing rides the same knob in both runtimes; the config digest
    // excludes telemetry, so traced and untraced artifacts stay diffable.
    cfg.telemetry.trace_capacity = obs.trace;
    if let Some(spec) = opt("--faults") {
        // The spanned parser points at the exact offending byte range.
        match nba_core::parse_faults_flag(&spec) {
            Ok(plan) => cfg.fault.plan = plan,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    }
    if let Some(spec) = opt("--shed") {
        match nba_core::ShedConfig::parse(&spec) {
            Ok(shed) => obs.shed = shed,
            Err(e) => {
                eprintln!("--shed: {e}");
                return 2;
            }
        }
    }
    if let Some(n) = opt("--audit") {
        match n.parse::<usize>() {
            Ok(cap) if cap > 0 => cfg.audit = nba_core::audit::AuditConfig::full(cap),
            _ => {
                eprintln!("--audit: expected a decision-log capacity > 0, got '{n}'");
                return 2;
            }
        }
    }
    let audit_out = opt("--audit-out");
    if audit_out.is_some() && !cfg.audit.enabled() {
        eprintln!("--audit-out needs --audit N to record decisions");
        return 2;
    }
    if let Some(spec) = opt("--slo") {
        match nba_core::audit::SloConfig::parse(&spec) {
            Ok(slo) => {
                cfg.slo = Some(slo.clone());
                obs.slo = Some(slo);
            }
            Err(e) => {
                eprintln!("--slo: {e}");
                return 2;
            }
        }
    }
    let appcfg = AppConfig {
        ports: cfg.topology.ports.len() as u16,
        ..AppConfig::default()
    };
    let Some((pipeline, v6)) = pipeline_for(app, &appcfg) else {
        eprintln!("unknown app '{app}' (expected ipv4|ipv6|ipsec|ids|nat)");
        return 2;
    };
    let Some(balancer) = balancer_for(&mode) else {
        eprintln!("unknown mode '{mode}' (expected alb|cpu|gpu|<fraction>)");
        return 2;
    };
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::Fixed(64),
            ip_version: if v6 { IpVersion::V6 } else { IpVersion::V4 },
            // The stateful app needs real connections: TCP so the
            // generator emits SYNs and the tables see handshakes, not an
            // undifferentiated packet stream.
            l4: if app == "nat" {
                L4Proto::Tcp
            } else {
                TrafficConfig::default().l4
            },
            ..TrafficConfig::default()
        },
    );
    let r = des::run(&cfg, &pipeline, &balancer, &traffic);
    let mut report = BenchReport::from_run(app, &cfg, &r, q);

    // Optional throughput-vs-workers sweep (the paper's per-core scaling
    // axis), appended to the artifact as the schema-v3 `scaling` section.
    if let Some(list) = opt("--workers") {
        let counts: Vec<usize> = match list
            .split(',')
            .map(|s| s.trim().parse::<usize>())
            .collect::<Result<Vec<_>, _>>()
        {
            Ok(c) if !c.is_empty() && c.iter().all(|&n| (1..=64).contains(&n)) => c,
            _ => {
                eprintln!(
                    "--workers: expected a comma-separated list of counts in 1..=64, got '{list}'"
                );
                return 2;
            }
        };
        let runtime = opt("--runtime").unwrap_or_else(|| "des".to_string());
        let per_port = TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::Fixed(64),
            ip_version: if v6 { IpVersion::V6 } else { IpVersion::V4 },
            ..TrafficConfig::default()
        };
        println!("{app}: scaling sweep ({runtime}), workers {counts:?}");
        let series = match runtime.as_str() {
            "des" => des_sweep(&counts, &cfg, &pipeline, &mode, &per_port),
            "live" => match live_sweep(&counts, q, &pipeline, &mode, &per_port, &cfg.fault, &obs) {
                Some(s) => s,
                None => {
                    eprintln!("unknown mode '{mode}' (expected alb|cpu|gpu|<fraction>)");
                    return 2;
                }
            },
            other => {
                eprintln!("unknown runtime '{other}' (expected des|live)");
                return 2;
            }
        };
        let live_ok = runtime != "live" || check_live_speedup(&series);
        report = report.with_scaling(&runtime, series);
        if !live_ok {
            // Still write the artifact so the failure is inspectable.
            let _ = std::fs::write(&out_path, report.to_json());
            return 1;
        }
    }

    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("cannot write {out_path}: {e}");
        return 2;
    }
    println!(
        "{app}: {:.2} Gbps ({:.2} Mpps), p50 {}ns p99 {}ns, w {:.3} -> {out_path}",
        report.tx_gbps,
        report.tx_mpps,
        report.latency.p50_ns,
        report.latency.p99_ns,
        report.balancer.final_w,
    );
    if cfg.fault.plan.is_active() {
        let f = &report.faults;
        println!(
            "{app}: faults injected {} retried {} fell_back {} pkts dropped {} pkts, quarantines {}",
            f.injected,
            f.retried,
            f.fell_back_packets,
            f.dropped_packets,
            f.quarantines.len(),
        );
    }
    if let Some(fl) = &report.flows {
        println!(
            "{app}: flows live {} (inserts {}, evictions {}, migrated {}), \
             drops full {} out-of-state {}, nat ports {}",
            fl.live,
            fl.inserts,
            fl.evictions_total(),
            fl.migrated_in,
            fl.table_full_drops,
            fl.out_of_state_drops,
            fl.nat_ports_in_use,
        );
    }
    if let Some(d) = &report.drift {
        println!(
            "{app}: drift rel_err {:.3} over {} tasks, events {}{}",
            d.rel_err,
            d.tasks,
            d.events,
            match &d.worst_stage {
                Some(s) => format!(" (worst stage: {s})"),
                None => String::new(),
            },
        );
    }
    if let Some(sl) = &report.slo {
        println!(
            "{app}: slo {} — latency burn {:.2}, throughput burn {:.2} over {} windows",
            if sl.met { "met" } else { "MISSED" },
            sl.latency_burn,
            sl.throughput_burn,
            sl.windows,
        );
    }
    if let Some(path) = audit_out {
        let Some(log) = &r.decisions else {
            eprintln!(
                "--audit-out: the run produced no decision log (mode '{mode}' never updates w?)"
            );
            return 2;
        };
        if let Err(e) = std::fs::write(&path, log.to_jsonl()) {
            eprintln!("cannot write {path}: {e}");
            return 2;
        }
        println!(
            "{app}: {} balancer decisions -> {path} (render with `nba-bench explain {path}`)",
            log.records.len()
        );
    }
    0
}

/// `nba-bench explain <decisions.jsonl>`: verify the log replays
/// bit-exactly, then render it as a human timeline.
fn cmd_explain(args: &[String]) -> i32 {
    let [path] = positionals(args)[..] else {
        usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let log = match nba_core::audit::DecisionLog::from_jsonl(&text) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{path}: {e}");
            return 2;
        }
    };
    // Replay the recorded inputs through a fresh balancer: the log is
    // trustworthy only if it reproduces itself bit for bit.
    match nba_core::audit::replay(&log) {
        Ok(replayed) if replayed.bit_eq(&log) => {
            println!(
                "replay: {} records reproduced bit-exactly\n",
                log.records.len()
            );
        }
        Ok(_) => {
            eprintln!("{path}: replay DIVERGED from the recorded decisions — the log does not explain itself");
            return 1;
        }
        Err(e) => {
            eprintln!("{path}: replay failed: {e}");
            return 1;
        }
    }
    print!("{}", log.explain());
    0
}

fn cmd_compare(args: &[String]) -> i32 {
    let [base_path, cur_path] = positionals(args)[..] else {
        usage();
    };
    let tol_of = |name: &str, default: f64| -> f64 {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| {
                args.iter()
                    .find_map(|a| a.strip_prefix(&format!("{name}=")).map(str::to_string))
            })
            .map(|v| match v.parse() {
                Ok(f) => f,
                Err(_) => {
                    eprintln!("{name}: not a number: {v}");
                    std::process::exit(2);
                }
            })
            .unwrap_or(default)
    };
    let defaults = Tolerances::default();
    let tol = Tolerances {
        throughput_rel: tol_of("--tol-throughput", defaults.throughput_rel),
        latency_rel: tol_of("--tol-latency", defaults.latency_rel),
        w_abs: tol_of("--tol-w", defaults.w_abs),
        ..defaults
    };
    let load = |path: &str| -> BenchReport {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        match BenchReport::parse(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            }
        }
    };
    let base = load(base_path);
    let cur = load(cur_path);
    let c = compare(&base, &cur, &tol);
    print!("{}", c.render());
    i32::from(c.regressed())
}

/// One raw HTTP GET against the stats endpoint — no HTTP client dep, the
/// server always answers with `Connection: close` so read-to-EOF is the
/// framing.
fn fetch(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    s.set_read_timeout(Some(std::time::Duration::from_secs(2)))
        .ok();
    s.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )
    .map_err(|e| format!("send {addr}: {e}"))?;
    let mut buf = String::new();
    s.read_to_string(&mut buf)
        .map_err(|e| format!("read {addr}: {e}"))?;
    match buf.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(format!("{addr}: malformed HTTP response")),
    }
}

/// Renders one `/status` document as a terminal snapshot: run totals on
/// one line, then a per-shard table.
fn render_top(doc: &nba_core::json::Value) -> String {
    let f = |v: Option<&nba_core::json::Value>| v.and_then(nba_core::json::Value::as_f64);
    let u = |v: Option<&nba_core::json::Value>| v.and_then(nba_core::json::Value::as_u64);
    let totals = doc.get("totals");
    let latency = doc.get("latency");
    let mut out = format!(
        "elapsed {:.1}s  tx {} pkts  dropped {}  offloaded {} batches  p50 {}ns p99 {}ns  quarantined {}  dumps {}\n",
        f(doc.get("elapsed_s")).unwrap_or(0.0),
        u(totals.and_then(|t| t.get("tx_packets"))).unwrap_or(0),
        u(totals.and_then(|t| t.get("dropped"))).unwrap_or(0),
        u(totals.and_then(|t| t.get("offloaded_batches"))).unwrap_or(0),
        u(latency.and_then(|l| l.get("p50_ns"))).unwrap_or(0),
        u(latency.and_then(|l| l.get("p99_ns"))).unwrap_or(0),
        doc.get("quarantined")
            .and_then(nba_core::json::Value::as_bool)
            .unwrap_or(false),
        u(doc.get("flight_dumps")).unwrap_or(0),
    );
    // SLO burn rates (null unless the run declared budgets) and drift
    // gauges published by the device thread.
    if let Some(slo) = doc
        .get("slo")
        .filter(|v| !matches!(v, nba_core::json::Value::Null))
    {
        let ok = |k: &str| {
            slo.get(k)
                .and_then(nba_core::json::Value::as_bool)
                .unwrap_or(true)
        };
        out.push_str(&format!(
            "slo: latency {} (burn {:.2})  throughput {} (burn {:.2})\n",
            if ok("latency_ok") { "ok" } else { "VIOLATED" },
            f(slo.get("latency_burn")).unwrap_or(0.0),
            if ok("throughput_ok") {
                "ok"
            } else {
                "VIOLATED"
            },
            f(slo.get("throughput_burn")).unwrap_or(0.0),
        ));
    }
    if let Some(drift) = doc.get("drift") {
        let events = u(drift.get("events")).unwrap_or(0);
        if events > 0 {
            out.push_str(&format!(
                "drift: {} event(s), rel_err {:.3}{}\n",
                events,
                f(drift.get("rel_err")).unwrap_or(0.0),
                drift
                    .get("worst_stage")
                    .and_then(nba_core::json::Value::as_str)
                    .map(|s| format!(", worst stage {s}"))
                    .unwrap_or_default(),
            ));
        }
    }
    out.push_str("shard  state          ring   high-water   enq-fail   rx-drop        w\n");
    for s in doc
        .get("shards")
        .and_then(nba_core::json::Value::as_arr)
        .unwrap_or(&[])
    {
        out.push_str(&format!(
            "{:>5}  {:<10} {:>9} {:>12} {:>10} {:>9} {:>8.3}\n",
            u(s.get("shard")).unwrap_or(0),
            s.get("state")
                .and_then(nba_core::json::Value::as_str)
                .unwrap_or("healthy"),
            u(s.get("ring_occupancy")).unwrap_or(0),
            u(s.get("ring_high_water")).unwrap_or(0),
            u(s.get("enqueue_failed")).unwrap_or(0),
            u(s.get("rx_dropped")).unwrap_or(0),
            f(s.get("w")).unwrap_or(0.0),
        ));
    }
    out
}

fn cmd_top(args: &[String]) -> i32 {
    let [addr] = positionals(args)[..] else {
        usage();
    };
    let opt = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
            .or_else(|| {
                args.iter()
                    .find_map(|a| a.strip_prefix(&format!("{name}=")).map(str::to_string))
            })
    };
    let interval = opt("--interval")
        .or_else(|| opt("--interval-ms"))
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1000);
    let count = opt("--count")
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(1);
    for i in 0..count.max(1) {
        let body = match fetch(addr, "/status") {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        };
        let doc = match nba_core::json::parse(&body) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{addr}: bad /status JSON: {e:?}");
                return 2;
            }
        };
        print!("{}", render_top(&doc));
        if i + 1 < count {
            println!();
            std::thread::sleep(std::time::Duration::from_millis(interval));
        }
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("top") => cmd_top(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        _ => usage(),
    };
    std::process::exit(code);
}
