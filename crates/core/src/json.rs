//! A minimal JSON parser for the telemetry/bench tooling.
//!
//! The workspace is dependency-free by design, but the bench pipeline needs
//! to *read* JSON back: `nba-bench compare` parses `BENCH_*.json` reports,
//! and tests validate exporter output (JSONL, Chrome traces). This module
//! implements just enough of RFC 8259 for those uses: the full value
//! grammar, string escapes (including `\uXXXX` with surrogate pairs), and
//! numbers parsed as `f64`.
//!
//! It is a *strict* parser — trailing garbage, trailing commas, unquoted
//! keys, and control characters inside strings are errors — so round-trip
//! tests against our own serializers also guard the serializers.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; JSON does not distinguish integers from floats.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Keyed by a sorted map: key order is not significant in
    /// JSON and sorted keys make test assertions deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key` if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// This value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// This value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// This value's fields, if it is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        s: input,
        b: input.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a str,
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.i,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{0008}'),
                        b'f' => s.push('\u{000c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow to form one supplementary character.
                                if self.peek() == Some(b'\\') {
                                    self.i += 1;
                                    self.eat(b'u')?;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            s.push(c);
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(c) if c < 0x80 => {
                    s.push(c as char);
                    self.i += 1;
                }
                Some(_) => {
                    // One multi-byte UTF-8 scalar; `self.i` always sits on
                    // a char boundary (input is &str), so slicing is safe
                    // and decoding is O(1) per char.
                    let ch = self.s[self.i..].chars().next().unwrap();
                    s.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("non-hex digit in \\u escape"))?;
            v = (v << 4) | d;
            self.i += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        // Integer part: a lone 0, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"d"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("d"));
        let arr = v.get("a").and_then(Value::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&Value::Null));
    }

    #[test]
    fn string_escapes() {
        let v = parse(r#""a\"b\\c\nd\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
        // Surrogate pair: U+1F600.
        let v = parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("01").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"\\ud800\"").is_err()); // lone surrogate
        assert!(parse("nulL").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
    }
}
