//! Node-local storage (§3.2).
//!
//! Worker threads are shared-nothing, but large read-dominant data
//! structures (forwarding tables, IDS automata) would blow the cache if
//! replicated per worker. NBA lets elements "define and access a shared
//! memory buffer using unique names" per NUMA node; this is that registry.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

/// A per-NUMA-node named registry of shared read-mostly state.
///
/// Values are immutable once published (`Arc<T>`); elements needing mutable
/// shared state store interior-mutability types themselves (the "optional
/// read-write locks" of the paper).
#[derive(Clone, Default)]
pub struct NodeLocalStorage {
    map: Arc<RwLock<HashMap<String, Arc<dyn Any + Send + Sync>>>>,
}

impl NodeLocalStorage {
    /// Creates an empty registry.
    pub fn new() -> NodeLocalStorage {
        NodeLocalStorage::default()
    }

    /// Returns the value under `name`, initializing it with `init` on first
    /// access. The first worker to configure an element builds the table;
    /// replicas on the same node reuse it.
    ///
    /// # Panics
    ///
    /// Panics if `name` exists with a different type.
    pub fn get_or_init<T, F>(&self, name: &str, init: F) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> T,
    {
        if let Some(v) = self.map.read().get(name) {
            return Arc::clone(v)
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("node-local entry {name:?} has a different type"));
        }
        let mut w = self.map.write();
        // Double-checked: another worker may have initialized meanwhile.
        if let Some(v) = w.get(name) {
            return Arc::clone(v)
                .downcast::<T>()
                .unwrap_or_else(|_| panic!("node-local entry {name:?} has a different type"));
        }
        let value = Arc::new(init());
        w.insert(name.to_owned(), value.clone());
        value
    }

    /// Returns the value under `name` if present and of type `T`.
    pub fn get<T: Any + Send + Sync>(&self, name: &str) -> Option<Arc<T>> {
        self.map
            .read()
            .get(name)
            .and_then(|v| Arc::clone(v).downcast::<T>().ok())
    }

    /// Number of published entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// `true` if nothing is published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for NodeLocalStorage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NodeLocalStorage({} entries)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_once_then_shared() {
        let nls = NodeLocalStorage::new();
        let mut builds = 0;
        let a = nls.get_or_init("table", || {
            builds += 1;
            vec![1u32, 2, 3]
        });
        let b = nls.get_or_init("table", || {
            builds += 1;
            vec![9u32]
        });
        assert_eq!(builds, 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(*b, vec![1, 2, 3]);
    }

    #[test]
    fn get_respects_type() {
        let nls = NodeLocalStorage::new();
        nls.get_or_init("x", || 42u64);
        assert_eq!(nls.get::<u64>("x").as_deref(), Some(&42));
        assert!(nls.get::<String>("x").is_none());
        assert!(nls.get::<u64>("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_conflict_panics() {
        let nls = NodeLocalStorage::new();
        nls.get_or_init("x", || 1u8);
        let _ = nls.get_or_init("x", || "oops".to_owned());
    }

    #[test]
    fn clones_share_the_map() {
        let nls = NodeLocalStorage::new();
        let nls2 = nls.clone();
        nls.get_or_init("k", || 7i32);
        assert_eq!(nls2.get::<i32>("k").as_deref(), Some(&7));
        assert_eq!(nls2.len(), 1);
    }

    #[test]
    fn usable_across_threads() {
        let nls = NodeLocalStorage::new();
        let nls2 = nls.clone();
        let t = std::thread::spawn(move || {
            let v = nls2.get_or_init("shared", || 123u32);
            *v
        });
        assert_eq!(t.join().unwrap(), 123);
        assert_eq!(nls.get::<u32>("shared").as_deref(), Some(&123));
    }
}
