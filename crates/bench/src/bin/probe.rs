//! Calibration probe: prints detailed counters for one configuration.
//!
//! Usage: `probe [app] [size] [mode] [flags...]`
//!
//! * `app`  — `v4` | `v6` | `ipsec` | `ids` (default `v6`)
//! * `size` — fixed packet size in bytes (default 64)
//! * `mode` — `cpu` | `gpu` | `alb` | a fixed offload fraction like `0.5`
//!   (default `cpu`)
//!
//! Telemetry flags:
//!
//! * `--elements`  — per-element profile table
//! * `--series`    — run time-series as JSONL (w-vs-time, Figures 12/13)
//! * `--trace[=N]` — batch-lifecycle trace as JSONL (ring of N events per
//!   worker, default 4096)
//! * `--chrome`    — emit the batch trace as Chrome Trace Event Format
//!   JSON only (open in Perfetto / `chrome://tracing`); implies `--trace`
//! * `--prom`      — the whole report in Prometheus text format
//! * `--json`      — the run as a canonical `BenchReport` JSON document
//!   (the same schema `nba-bench run` writes to `BENCH_*.json`)
//! * `--no-telemetry` — disable the sampler (for determinism comparisons)
//! * `--faults=SPEC` — run under a seeded fault plan (see
//!   `FaultPlan::parse`, e.g. `seed=7,transient=0.2,die_at_ms=30`); the
//!   summary gains a fault-accounting line
//!
//! Static analysis:
//!
//! * `probe --check [--json] <config.click>...` — run the `nba-lint`
//!   verifier over pipeline configurations without starting a run. Exits
//!   nonzero if any file fails to parse or produces *any* diagnostic
//!   (warnings included — CI keeps shipped configs spotless).
use nba_apps::{pipelines, AppConfig};
use nba_bench::report::BenchReport;
use nba_core::graph::BranchPolicy;
use nba_core::lb;
use nba_core::nls::NodeLocalStorage;
use nba_core::runtime::{des, traffic_per_port, BuildCtx, RuntimeConfig};
use nba_core::telemetry::{
    self, profile_table, report_to_prometheus, samples_to_jsonl, trace_to_chrome, trace_to_jsonl,
};
use nba_io::{IpVersion, SizeDist, TrafficConfig};
use nba_sim::Time;

/// `probe --check`: lint configuration files and exit. Strict by design —
/// any diagnostic (even a warning) is a nonzero exit so CI keeps the
/// shipped example pipelines spotless.
fn check_configs(files: &[&str], json: bool) -> ! {
    if files.is_empty() {
        eprintln!("usage: probe --check [--json] <config.click>...");
        std::process::exit(2);
    }
    // A throwaway build context: --check instantiates elements only to read
    // their static metadata (ports, slot claims, offload specs).
    let bctx = BuildCtx {
        worker: 0,
        socket: 0,
        nls: NodeLocalStorage::new(),
        balancer: lb::shared(Box::new(lb::CpuOnly)),
        policy: BranchPolicy::Predict,
    };
    let app = AppConfig::default();
    let reg = pipelines::registry(&bctx, &app);
    let mut failed = false;
    for f in files {
        let src = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{f}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match nba_core::build_graph_checked(&src, &reg, bctx.policy) {
            Ok(checked) => {
                if json {
                    println!("{}", checked.report.render_json());
                } else if checked.report.is_clean() {
                    println!("{f}: ok ({} elements)", checked.graph.len());
                } else {
                    print!("{}", checked.report.render_text());
                    println!("{f}: {} diagnostic(s)", checked.report.diagnostics.len());
                }
                failed |= !checked.report.is_clean();
            }
            Err(e) => {
                eprintln!("{f}: configuration error: {e}");
                failed = true;
            }
        }
    }
    std::process::exit(i32::from(failed));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let positional: Vec<&str> = args
        .iter()
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"))
        .collect();
    if args.iter().any(|a| a == "--check") {
        check_configs(&positional, args.iter().any(|a| a == "--json"));
    }
    let which = positional.first().copied().unwrap_or("v6");
    let size: usize = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(64);
    let mode = positional.get(2).copied().unwrap_or("cpu");

    let flag = |name: &str| args.iter().any(|a| a == name);
    let show_elements = flag("--elements");
    let show_series = flag("--series");
    let show_prom = flag("--prom");
    let trace_capacity: usize = args
        .iter()
        .find_map(|a| {
            a.strip_prefix("--trace").map(|rest| {
                rest.strip_prefix('=')
                    .and_then(|n| n.parse().ok())
                    .unwrap_or(4096)
            })
        })
        // --chrome is useless without a trace buffer, so it implies one.
        .unwrap_or(if flag("--chrome") { 4096 } else { 0 });

    let mut telemetry = telemetry::TelemetryConfig {
        trace_capacity,
        ..Default::default()
    };
    if flag("--no-telemetry") {
        telemetry = telemetry::TelemetryConfig::off();
    }

    // The `alb` mode shortens the balancer's observation interval so its
    // hill-climb is visible within the probe's short horizon (the full
    // Figure 12/13 sweeps use the paper's 0.2 s interval over seconds).
    let (warmup, measure) = if mode == "alb" {
        (Time::from_ms(10), Time::from_ms(120))
    } else {
        (Time::from_ms(14), Time::from_ms(28))
    };
    let mut cfg = RuntimeConfig {
        warmup,
        measure,
        telemetry,
        ..RuntimeConfig::default()
    };
    if let Some(spec) = args.iter().find_map(|a| a.strip_prefix("--faults=")) {
        // Spanned parse: the error names the offending byte range.
        match nba_core::parse_faults_flag(spec) {
            Ok(plan) => cfg.fault.plan = plan,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        }
    }
    let app = AppConfig {
        ports: 8,
        ..AppConfig::default()
    };
    let (pipeline, v6) = match which {
        "v4" => (pipelines::ipv4_router(&app), false),
        "v6" => (pipelines::ipv6_router(&app), true),
        "ipsec" => (pipelines::ipsec_gateway(&app), false),
        "ids" => (pipelines::ids(&app).0, false),
        _ => panic!("unknown app"),
    };
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 10.0,
            size: SizeDist::Fixed(size),
            ip_version: if v6 { IpVersion::V6 } else { IpVersion::V4 },
            ..TrafficConfig::default()
        },
    );
    let balancer: lb::SharedBalancer = match mode {
        "cpu" => lb::shared(Box::new(lb::CpuOnly)),
        "gpu" => lb::shared(Box::new(lb::GpuOnly)),
        "alb" => lb::shared(Box::new(lb::Adaptive::new(lb::AlbConfig {
            update_interval: Time::from_ms(1),
            avg_window: 2,
            min_wait: 0,
            max_wait: 2,
            initial_w: 0.5,
            ..lb::AlbConfig::default()
        }))),
        w => lb::shared(Box::new(lb::FixedFraction::new(w.parse().unwrap()))),
    };
    let r = des::run(&cfg, &pipeline, &balancer, &traffic);
    if flag("--json") {
        // The same versioned schema `nba-bench run` writes, so one parser
        // serves both tools.
        print!(
            "{}",
            BenchReport::from_run(which, &cfg, &r, false).to_json()
        );
        return;
    }
    if flag("--chrome") {
        // Pure JSON on stdout so `probe ... --trace --chrome > t.json`
        // loads straight into Perfetto (implies --trace if not given).
        print!("{}", trace_to_chrome(&r.trace, &r.elements));
        return;
    }
    println!(
        "{which} {size}B {mode}: {:.2} Gbps ({:.2} Mpps)",
        r.tx_gbps,
        r.tx_mpps()
    );
    println!("  window {:?}", r.window);
    println!(
        "  rx_dropped {} offered {}",
        r.rx_dropped, r.offered_packets
    );
    for (i, g) in r.gpu.iter().enumerate() {
        println!(
            "  gpu{i}: tasks {} h2d {}MB d2h {}MB kbusy {} cbusy {}",
            g.tasks,
            g.h2d_bytes / 1_000_000,
            g.d2h_bytes / 1_000_000,
            g.kernel_busy,
            g.copy_busy
        );
    }
    println!(
        "  lat p50 {} p999 {}",
        r.latency.percentile(50.0),
        r.latency.percentile(99.9)
    );
    println!(
        "  final_w {:.3} samples {} trace_events {}",
        r.final_w,
        r.samples.len(),
        r.trace.len()
    );
    if cfg.fault.plan.is_active() {
        let f = &r.faults.snapshot;
        println!(
            "  faults injected {} (timeout {} transient {} corrupt {} dead {}) retried {}",
            f.injected(),
            f.injected_timeout,
            f.injected_transient,
            f.injected_corrupt,
            f.injected_dead,
            f.retried,
        );
        println!(
            "  fell_back {} pkts dropped {} pkts quarantines {} (re-admitted {})",
            f.fell_back_packets, f.dropped_packets, f.quarantine_entered, f.quarantine_exited,
        );
    }

    if show_elements {
        println!("\n== per-element profiles (whole run) ==");
        print!("{}", profile_table(&r.elements));
    }
    if show_series {
        println!("\n== time-series (JSONL) ==");
        print!("{}", samples_to_jsonl(&r.samples));
    }
    if trace_capacity > 0 {
        println!("\n== batch-lifecycle trace (JSONL) ==");
        print!("{}", trace_to_jsonl(&r.trace));
    }
    if show_prom {
        println!("\n== prometheus ==");
        print!("{}", report_to_prometheus(&r));
    }
}
