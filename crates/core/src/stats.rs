//! Counters, the system inspector (§3.4), and latency histograms (§4.6).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nba_sim::Time;

/// Per-worker counters, updated with relaxed atomics so the live runtime can
/// share them across threads (the DES runtime is single-threaded anyway).
#[derive(Debug, Default)]
pub struct Counters {
    /// Packets fetched from RX queues.
    pub rx_packets: AtomicU64,
    /// Packets transmitted.
    pub tx_packets: AtomicU64,
    /// Frame bits transmitted (the paper's Gbps accounting).
    pub tx_frame_bits: AtomicU64,
    /// Packets dropped inside the pipeline (invalid, TTL-expired...).
    pub dropped: AtomicU64,
    /// Batches processed by the IO loop.
    pub batches: AtomicU64,
    /// New batch objects allocated by splits.
    pub split_allocs: AtomicU64,
    /// Batches sent to an accelerator.
    pub offloaded_batches: AtomicU64,
    /// Packets processed by the CPU-side function of offloadables.
    pub cpu_processed: AtomicU64,
    /// Packets processed by the accelerator-side function.
    pub gpu_processed: AtomicU64,
    /// Exponentially-weighted moving average of recent packet latencies in
    /// nanoseconds (the bounded-latency balancer's feedback signal).
    pub latency_ewma_ns: AtomicU64,
}

impl Counters {
    /// Adds `n` with relaxed ordering.
    pub fn add(field: &AtomicU64, n: u64) {
        field.fetch_add(n, Ordering::Relaxed);
    }

    /// Folds one latency sample into the EWMA (alpha = 1/16).
    ///
    /// Uses a CAS loop rather than separate load/store so that concurrent
    /// samples from live-runtime workers are never silently dropped: each
    /// successful update is built from the value actually in the cell.
    pub fn observe_latency(&self, ns: u64) {
        let _ = self
            .latency_ewma_ns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |cur| {
                Some(if cur == 0 {
                    ns
                } else {
                    cur - cur / 16 + ns / 16
                })
            });
    }

    /// Reads with relaxed ordering.
    pub fn get(field: &AtomicU64) -> u64 {
        field.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of this one counter block — the per-worker
    /// shard of the system totals (sharded runtimes report these alongside
    /// the [`SystemInspector`]'s merged view).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            rx_packets: Counters::get(&self.rx_packets),
            tx_packets: Counters::get(&self.tx_packets),
            tx_frame_bits: Counters::get(&self.tx_frame_bits),
            dropped: Counters::get(&self.dropped),
            batches: Counters::get(&self.batches),
            split_allocs: Counters::get(&self.split_allocs),
            offloaded_batches: Counters::get(&self.offloaded_batches),
            cpu_processed: Counters::get(&self.cpu_processed),
            gpu_processed: Counters::get(&self.gpu_processed),
        }
    }
}

/// A point-in-time copy of aggregated counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// See [`Counters::rx_packets`].
    pub rx_packets: u64,
    /// See [`Counters::tx_packets`].
    pub tx_packets: u64,
    /// See [`Counters::tx_frame_bits`].
    pub tx_frame_bits: u64,
    /// See [`Counters::dropped`].
    pub dropped: u64,
    /// See [`Counters::batches`].
    pub batches: u64,
    /// See [`Counters::split_allocs`].
    pub split_allocs: u64,
    /// See [`Counters::offloaded_batches`].
    pub offloaded_batches: u64,
    /// See [`Counters::cpu_processed`].
    pub cpu_processed: u64,
    /// See [`Counters::gpu_processed`].
    pub gpu_processed: u64,
}

impl Snapshot {
    /// Renders the snapshot as a flat JSON object (the stats endpoint's
    /// `totals` block; dependency-free like every exporter).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rx_packets\":{},\"tx_packets\":{},\"tx_frame_bits\":{},\"dropped\":{},\"batches\":{},\"split_allocs\":{},\"offloaded_batches\":{},\"cpu_processed\":{},\"gpu_processed\":{}}}",
            self.rx_packets,
            self.tx_packets,
            self.tx_frame_bits,
            self.dropped,
            self.batches,
            self.split_allocs,
            self.offloaded_batches,
            self.cpu_processed,
            self.gpu_processed,
        )
    }
}

impl std::ops::Sub for Snapshot {
    type Output = Snapshot;

    /// Field-wise saturating difference. Saturating rather than panicking:
    /// windows are taken over relaxed atomics, so a field read can lag a
    /// sibling by a few increments and momentarily run "backwards".
    fn sub(self, rhs: Snapshot) -> Snapshot {
        Snapshot {
            rx_packets: self.rx_packets.saturating_sub(rhs.rx_packets),
            tx_packets: self.tx_packets.saturating_sub(rhs.tx_packets),
            tx_frame_bits: self.tx_frame_bits.saturating_sub(rhs.tx_frame_bits),
            dropped: self.dropped.saturating_sub(rhs.dropped),
            batches: self.batches.saturating_sub(rhs.batches),
            split_allocs: self.split_allocs.saturating_sub(rhs.split_allocs),
            offloaded_batches: self.offloaded_batches.saturating_sub(rhs.offloaded_batches),
            cpu_processed: self.cpu_processed.saturating_sub(rhs.cpu_processed),
            gpu_processed: self.gpu_processed.saturating_sub(rhs.gpu_processed),
        }
    }
}

impl std::ops::Add for Snapshot {
    type Output = Snapshot;

    /// Field-wise sum (shard merge).
    fn add(self, rhs: Snapshot) -> Snapshot {
        Snapshot {
            rx_packets: self.rx_packets + rhs.rx_packets,
            tx_packets: self.tx_packets + rhs.tx_packets,
            tx_frame_bits: self.tx_frame_bits + rhs.tx_frame_bits,
            dropped: self.dropped + rhs.dropped,
            batches: self.batches + rhs.batches,
            split_allocs: self.split_allocs + rhs.split_allocs,
            offloaded_batches: self.offloaded_batches + rhs.offloaded_batches,
            cpu_processed: self.cpu_processed + rhs.cpu_processed,
            gpu_processed: self.gpu_processed + rhs.gpu_processed,
        }
    }
}

/// The system inspector exposed to load-balancer elements: aggregated
/// statistics "such as the number of packets/batches processed after
/// startup" (§3.4).
#[derive(Debug, Clone, Default)]
pub struct SystemInspector {
    workers: Vec<Arc<Counters>>,
}

impl SystemInspector {
    /// Builds an inspector over per-worker counter blocks.
    pub fn new(workers: Vec<Arc<Counters>>) -> SystemInspector {
        SystemInspector { workers }
    }

    /// The counter block of worker `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn worker(&self, i: usize) -> &Arc<Counters> {
        &self.workers[i]
    }

    /// Number of workers.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Aggregates all workers into a snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::default();
        for w in &self.workers {
            s = s + w.snapshot();
        }
        s
    }

    /// Total packets transmitted (the ALB's throughput signal).
    pub fn total_tx_packets(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| Counters::get(&w.tx_packets))
            .sum()
    }

    /// The worst recent-latency EWMA across workers, in nanoseconds (the
    /// bounded-latency balancer's signal; 0 until traffic flows).
    pub fn worst_latency_ewma_ns(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| Counters::get(&w.latency_ewma_ns))
            .max()
            .unwrap_or(0)
    }
}

/// A log-linear latency histogram (HdrHistogram-style: 4 sub-bucket bits,
/// ~6 % relative resolution) over nanosecond values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    min_ns: u64,
    max_ns: u64,
    sum_ns: u128,
}

/// Sub-bucket resolution bits.
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: vec![0; ((64 - SUB_BITS as usize) + 1) * SUB as usize],
            count: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            sum_ns: 0,
        }
    }

    fn index(ns: u64) -> usize {
        if ns < SUB {
            return ns as usize;
        }
        let exp = 63 - ns.leading_zeros() as u64; // >= SUB_BITS
        let major = exp - u64::from(SUB_BITS) + 1;
        let minor = (ns >> (exp - u64::from(SUB_BITS))) - SUB;
        (major * SUB + SUB + minor) as usize - SUB as usize
    }

    /// Representative (lower-bound) value of bucket `idx`.
    fn bucket_floor(idx: usize) -> u64 {
        let idx = idx as u64;
        if idx < SUB {
            return idx;
        }
        let major = (idx - SUB) / SUB + 1;
        let minor = (idx - SUB) % SUB;
        (SUB + minor) << (major - 1)
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Time) {
        self.record_ns(latency.as_ns());
    }

    /// Records one latency sample given directly in nanoseconds (the
    /// element-dispatch path accumulates raw `u64` nanoseconds; converting
    /// through [`Time`] would overflow for values above `u64::MAX / 1000`).
    pub fn record_ns(&mut self, ns: u64) {
        let idx = Self::index(ns).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.sum_ns += u128::from(ns);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest nanosecond count representable as a [`Time`] (picoseconds in
    /// a `u64`); ns-valued accessors clamp here before converting.
    const TIME_NS_MAX: u64 = u64::MAX / 1000;

    /// Smallest recorded sample in nanoseconds (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded sample in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean of recorded samples in nanoseconds.
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum_ns / u128::from(self.count)) as u64
        }
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Time {
        Time::from_ns(self.min_ns().min(Self::TIME_NS_MAX))
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Time {
        Time::from_ns(self.max_ns.min(Self::TIME_NS_MAX))
    }

    /// Mean of recorded samples.
    pub fn mean(&self) -> Time {
        Time::from_ns(self.mean_ns().min(Self::TIME_NS_MAX))
    }

    /// Value at percentile `p` in nanoseconds, within bucket resolution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        // The last sample is the recorded maximum itself — answer it
        // exactly instead of its bucket's floor, so p100 == max() even
        // though buckets are ~6 % wide.
        if target >= self.count {
            return self.max_ns;
        }
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_floor(i).max(self.min_ns).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Value at percentile `p` (0.0..=100.0), within bucket resolution.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Time {
        Time::from_ns(self.percentile_ns(p).min(Self::TIME_NS_MAX))
    }

    /// Nonzero buckets as `(bucket floor in ns, count)` pairs, coarsest
    /// possible view of the raw distribution (exporters, merge audits).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_floor(i), c))
            .collect()
    }

    /// CDF points `(latency, cumulative fraction)` for plotting (Fig. 14).
    pub fn cdf(&self) -> Vec<(Time, f64)> {
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            out.push((
                Time::from_ns(Self::bucket_floor(i)),
                seen as f64 / self.count as f64,
            ));
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        self.sum_ns += other.sum_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_monotone_and_bracketing() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Time::from_us(us));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.percentile(50.0);
        let p99 = h.percentile(99.0);
        let p999 = h.percentile(99.9);
        assert!(p50 <= p99 && p99 <= p999);
        // ~6% bucket resolution.
        let mid = p50.as_us() as f64;
        assert!((mid - 500.0).abs() / 500.0 < 0.08, "p50 = {mid}");
        assert!(h.min() == Time::from_us(1));
        assert!(h.max() == Time::from_us(1000));
        let mean = h.mean().as_us();
        assert!((mean as i64 - 500).abs() <= 1);
    }

    #[test]
    fn histogram_handles_tiny_and_huge() {
        let mut h = LatencyHistogram::new();
        h.record(Time::ZERO);
        h.record(Time::from_ns(3));
        h.record(Time::from_secs(100));
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(0.0), Time::ZERO);
        // Within the ~6 % bucket resolution of the true 100 s maximum.
        assert!(h.percentile(100.0) >= Time::from_secs(93));
    }

    #[test]
    fn cdf_is_monotone_reaching_one() {
        let mut h = LatencyHistogram::new();
        for i in 0..100 {
            h.record(Time::from_us(10 + i % 7));
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut prev = 0.0;
        for &(_, f) in &cdf {
            assert!(f >= prev);
            prev = f;
        }
        assert!((prev - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Time::from_us(10));
        b.record(Time::from_us(20));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Time::from_us(10));
        assert_eq!(a.max(), Time::from_us(20));
    }

    #[test]
    fn inspector_aggregates_workers() {
        let w1 = Arc::new(Counters::default());
        let w2 = Arc::new(Counters::default());
        Counters::add(&w1.tx_packets, 10);
        Counters::add(&w2.tx_packets, 5);
        Counters::add(&w2.tx_frame_bits, 512);
        let insp = SystemInspector::new(vec![w1, w2]);
        assert_eq!(insp.total_tx_packets(), 15);
        let s = insp.snapshot();
        assert_eq!(s.tx_packets, 15);
        assert_eq!(s.tx_frame_bits, 512);
        assert_eq!(insp.worker_count(), 2);
    }

    #[test]
    fn snapshot_subtraction_windows() {
        let w = Arc::new(Counters::default());
        let insp = SystemInspector::new(vec![w.clone()]);
        Counters::add(&w.tx_packets, 100);
        let a = insp.snapshot();
        Counters::add(&w.tx_packets, 50);
        let b = insp.snapshot();
        assert_eq!((b - a).tx_packets, 50);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn bad_percentile_panics() {
        let h = LatencyHistogram::new();
        let _ = h.percentile(101.0);
    }

    #[test]
    fn snapshot_subtraction_saturates() {
        let newer = Snapshot {
            tx_packets: 10,
            ..Snapshot::default()
        };
        let older = Snapshot {
            tx_packets: 25,
            dropped: 3,
            ..Snapshot::default()
        };
        let w = newer - older;
        assert_eq!(w.tx_packets, 0);
        assert_eq!(w.dropped, 0);
    }

    #[test]
    fn concurrent_latency_samples_are_not_lost() {
        // With identical samples the EWMA is a fixed point: once the cell
        // holds `c`, folding in another `c` yields `c - c/16 + c/16 = c`
        // exactly (c divisible by 16). Under the old load/store pair a race
        // could publish a half-applied value; under CAS every thread's
        // update composes, so the final value must be exactly `c`.
        let c = Arc::new(Counters::default());
        c.observe_latency(1600);
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.observe_latency(1600);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(Counters::get(&c.latency_ewma_ns), 1600);
    }

    #[test]
    fn ewma_converges_toward_recent_samples() {
        let c = Counters::default();
        c.observe_latency(32_000);
        for _ in 0..200 {
            c.observe_latency(1_600);
        }
        let v = Counters::get(&c.latency_ewma_ns);
        assert!(v < 2_000, "EWMA failed to track recent samples: {v}");
    }
}
