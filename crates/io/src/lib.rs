//! `nba-io`: the packet I/O substrate standing in for Intel DPDK + NICs.
//!
//! NBA sits on DPDK for zero-copy burst packet I/O, NUMA-aware mempools,
//! multi-queue NICs with receive-side scaling, and lock-free rings. This
//! crate rebuilds that layer for the simulated testbed:
//!
//! * [`buf`] — mbuf-style packet buffers with headroom and recycling
//!   [`buf::Mempool`]s,
//! * [`packet`] — the [`packet::Packet`] object elements manipulate,
//! * [`proto`] — zero-copy Ethernet/IPv4/IPv6/UDP/TCP/ESP header views with
//!   real checksums and a frame builder,
//! * [`checksum`] — RFC 1071 Internet checksum + RFC 1624 incremental update,
//! * [`toeplitz`] — the Microsoft RSS Toeplitz hash (verified against the
//!   specification's test vectors),
//! * [`port`] — the multi-queue NIC port model (RSS demux, serializing TX
//!   wire, bounded rings with drop accounting),
//! * [`gen`] — deterministic offered-load traffic generators (fixed-size,
//!   IMIX, CAIDA-like mixes over Zipf flow populations),
//! * [`pcap`] — classic pcap capture and rate-controlled trace replay,
//! * [`spsc`] — bounded single-producer/single-consumer rings (the
//!   `rte_ring` stand-in connecting RX queues to worker threads),
//! * [`rss`] — the live runtime's receive-side-scaling fanout steering
//!   packets into per-worker rings.

#![forbid(unsafe_code)]

pub mod buf;
pub mod checksum;
pub mod gen;
pub mod packet;
pub mod pcap;
pub mod port;
pub mod proto;
pub mod rss;
pub mod spsc;
pub mod toeplitz;

pub use buf::{Mempool, PacketBuf};
pub use gen::{IpVersion, L4Proto, PayloadFill, SizeDist, TrafficConfig, TrafficGen};
pub use packet::Packet;
pub use pcap::{Limited, PacketSource, PcapWriter, Replay, TraceRecord};
pub use port::{Port, PortHandle, TxOutcome};
pub use rss::{RssFanout, RssTable, SteerPlan, RSS_BUCKETS};
pub use toeplitz::Toeplitz;
