//! The OpenCL-like command-queue shim.
//!
//! The paper (§3.3) wraps CUDA behind "a shim layer that resembles the
//! OpenCL API" so other accelerators can slot in. This module is that shim
//! for the simulated device: commands are enqueued onto a stream and
//! executed in order; data movement and kernel execution happen
//! *functionally* at enqueue-processing time while their *completion times*
//! come from the [`Timeline`] model. A completion callback carries the
//! modeled completion time back to the caller — the equivalent of
//! `cudaStreamAddCallback` without its documented cross-queue
//! synchronization pitfall the paper complains about.

use nba_sim::cost::GpuCostModel;
use nba_sim::Time;

use crate::mem::{DeviceBuffer, DeviceMemory, MemError};
use crate::timeline::{TaskTiming, Timeline, TimelineStats};

/// A kernel: reads the staged input block, writes the output block.
///
/// `items` tells the kernel how many data-parallel items the input holds.
/// Kernels are plain host closures — the simulation executes them on the
/// engine thread; only their *timing* is device-modeled.
pub type KernelFn = dyn Fn(&[u8], &mut [u8], usize);

/// One simulated accelerator device.
pub struct Gpu {
    /// Marketing name, for diagnostics.
    pub name: String,
    mem: DeviceMemory,
    timeline: Timeline,
}

impl Gpu {
    /// Creates a device with the given timing model, memory capacity, and
    /// stream pool size.
    pub fn new(name: &str, model: GpuCostModel, mem_capacity: usize, streams: u32) -> Gpu {
        Gpu {
            name: name.to_owned(),
            mem: DeviceMemory::new(mem_capacity),
            timeline: Timeline::new(model, streams),
        }
    }

    /// A GTX 680-shaped device (2 GB, 16 streams), the paper's accelerator.
    pub fn gtx680(model: GpuCostModel) -> Gpu {
        Gpu::new("GTX 680", model, 2 << 30, 16)
    }

    /// Allocates a device buffer.
    pub fn alloc(&mut self, len: usize) -> Result<DeviceBuffer, MemError> {
        self.mem.alloc(len)
    }

    /// Frees a device buffer.
    pub fn free(&mut self, buf: DeviceBuffer) -> Result<(), MemError> {
        self.mem.free(buf)
    }

    /// Runs one full offload task: copy `input` in, run `kernel`, copy the
    /// output back into `output`.
    ///
    /// Functionally everything happens now; temporally the returned
    /// [`TaskTiming`] says when each stage completes on the device,
    /// respecting engine and stream serialization from earlier tasks.
    #[allow(clippy::too_many_arguments)]
    pub fn run_task(
        &mut self,
        now: Time,
        input: &[u8],
        items: usize,
        lane_ns: f64,
        output: &mut [u8],
        kernel: &KernelFn,
    ) -> Result<TaskTiming, MemError> {
        let in_buf = self.mem.alloc(input.len())?;
        let out_buf = match self.mem.alloc(output.len()) {
            Ok(b) => b,
            Err(e) => {
                // Do not leak the input buffer on failure.
                let _ = self.mem.free(in_buf);
                return Err(e);
            }
        };
        self.mem.write(&in_buf, 0, input)?;
        {
            let (i, o) = self.mem.in_out(&in_buf, &out_buf)?;
            kernel(i, o, items);
        }
        self.mem.read(&out_buf, 0, output)?;
        let stream = self.timeline.best_stream();
        let timing = self
            .timeline
            .submit(now, stream, input.len(), lane_ns, output.len());
        self.mem.free(in_buf)?;
        self.mem.free(out_buf)?;
        Ok(timing)
    }

    /// Schedules timing for a task whose data already lives on the device
    /// (datablock reuse between offloadable elements skips the H2D copy).
    pub fn run_resident_task(&mut self, now: Time, lane_ns: f64, d2h_bytes: usize) -> TaskTiming {
        let stream = self.timeline.best_stream();
        self.timeline.submit(now, stream, 0, lane_ns, d2h_bytes)
    }

    /// Charges an attempt that never completed (injected timeout or a dead
    /// device): the input copy of `h2d_bytes` still burned the H2D engine,
    /// but nothing came back. Returns when the doomed copy landed.
    pub fn abort_task(&mut self, now: Time, h2d_bytes: usize) -> Time {
        let stream = self.timeline.best_stream();
        self.timeline.submit_aborted(now, stream, h2d_bytes)
    }

    /// Device utilization counters.
    pub fn stats(&self) -> TimelineStats {
        self.timeline.stats()
    }

    /// Bytes of device memory currently allocated.
    pub fn mem_used(&self) -> usize {
        self.mem.used()
    }

    /// When the compute engine frees up (backpressure signal).
    pub fn kernel_free_at(&self) -> Time {
        self.timeline.kernel_free_at()
    }

    /// When the busiest engine (copies included) frees up.
    pub fn free_at(&self) -> Time {
        self.timeline.free_at()
    }
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu")
            .field("name", &self.name)
            .field("mem_used", &self.mem.used())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> GpuCostModel {
        GpuCostModel {
            kernel_launch: Time::from_us(10),
            parallel_lanes: 32,
            copy_latency: Time::from_us(5),
            h2d_bytes_per_sec: 1e9,
            d2h_bytes_per_sec: 1e9,
        }
    }

    #[test]
    fn task_transforms_data_and_reports_timing() {
        let mut gpu = Gpu::new("test", model(), 1 << 20, 4);
        let input: Vec<u8> = (0..64).collect();
        let mut output = vec![0u8; 64];
        let t = gpu
            .run_task(Time::ZERO, &input, 64, 640.0, &mut output, &|i, o, n| {
                for k in 0..n {
                    o[k] = i[k].wrapping_add(1);
                }
            })
            .unwrap();
        assert!(output.iter().enumerate().all(|(k, &v)| v == k as u8 + 1));
        assert!(t.d2h_done > t.kernel_done && t.kernel_done > t.h2d_done);
        assert_eq!(gpu.stats().tasks, 1);
        // Buffers were freed.
        assert_eq!(gpu.mem_used(), 0);
    }

    #[test]
    fn oom_task_fails_cleanly() {
        let mut gpu = Gpu::new("tiny", model(), 96, 1);
        let input = vec![0u8; 64];
        let mut output = vec![0u8; 64];
        let err = gpu
            .run_task(Time::ZERO, &input, 1, 1.0, &mut output, &|_, _, _| {})
            .unwrap_err();
        assert_eq!(err, MemError::OutOfMemory);
        // The input buffer must not leak.
        assert_eq!(gpu.mem_used(), 0);
    }

    #[test]
    fn resident_task_skips_h2d() {
        let mut gpu = Gpu::new("test", model(), 1 << 20, 4);
        let t = gpu.run_resident_task(Time::ZERO, 3200.0, 64);
        // No H2D copy: the "copy" completes after only the fixed latency of
        // a zero-byte transfer.
        assert_eq!(t.h2d_done, Time::from_us(5));
        assert_eq!(gpu.stats().h2d_bytes, 0);
    }

    #[test]
    fn consecutive_tasks_pipeline_across_streams() {
        let mut gpu = Gpu::new("test", model(), 1 << 20, 8);
        let input = vec![0u8; 1000];
        let mut out = vec![0u8; 1000];
        let t1 = gpu
            .run_task(Time::ZERO, &input, 1, 100_000.0, &mut out, &|_, _, _| {})
            .unwrap();
        let t2 = gpu
            .run_task(Time::ZERO, &input, 1, 100_000.0, &mut out, &|_, _, _| {})
            .unwrap();
        // Kernel-bound pipeline: completions spaced by one kernel duration.
        let kernel_dur = Time::from_us(10) + Time::from_ps((100_000.0 / 32.0 * 1000.0) as u64);
        assert!(t2.kernel_done - t1.kernel_done <= kernel_dur + Time::from_ns(1));
    }
}
