// Minimal L2 forwarder (the §4.6 latency baseline): swap MACs, pick the
// output NIC from the input port annotation. Matches `pipelines::l2fwd`.
src :: FromInput();
fwd :: L2Forward();
out :: ToOutput();

src -> fwd -> out;
