//! SHA-1 (FIPS 180-4).
//!
//! Used by the IPsec gateway's HMAC-SHA1 authentication. SHA-1 is broken for
//! collision resistance but remains what RFC 2404 specifies for ESP
//! authentication and what the paper's gateway computes.

/// SHA-1 digest length in bytes.
pub const DIGEST_LEN: usize = 20;
/// SHA-1 block length in bytes.
pub const BLOCK_LEN: usize = 64;

/// Streaming SHA-1 state.
#[derive(Debug, Clone)]
pub struct Sha1 {
    h: [u32; 5],
    /// Bytes buffered until a full block is available.
    buffer: [u8; BLOCK_LEN],
    buffered: usize,
    /// Total message length in bytes.
    total: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1::new()
    }
}

impl Sha1 {
    /// Creates a fresh hasher.
    pub fn new() -> Sha1 {
        Sha1 {
            h: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            buffer: [0u8; BLOCK_LEN],
            buffered: 0,
            total: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buffered > 0 {
            let take = rest.len().min(BLOCK_LEN - self.buffered);
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered < BLOCK_LEN {
                // Partial fill: nothing more to consume.
                return;
            }
            let block = self.buffer;
            self.compress(&block);
            self.buffered = 0;
        }
        let mut chunks = rest.chunks_exact(BLOCK_LEN);
        for block in &mut chunks {
            self.compress(block.try_into().unwrap());
        }
        let tail = chunks.remainder();
        self.buffer[..tail.len()].copy_from_slice(tail);
        self.buffered = tail.len();
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buffered != 56 {
            self.update(&[0]);
        }
        // Appending the length must not count toward the message length,
        // but update() already mixed in the padding; the stored bit_len was
        // captured before padding, so this is consistent.
        let mut lenb = [0u8; 8];
        lenb.copy_from_slice(&bit_len.to_be_bytes());
        self.update(&lenb);
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// One-shot convenience digest.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
        let mut s = Sha1::new();
        s.update(data);
        s.finalize()
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5a827999),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_180_vectors() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn million_a() {
        let mut s = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            s.update(&chunk);
        }
        assert_eq!(
            hex(&s.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_all_split_points() {
        let data: Vec<u8> = (0..=255u8).cycle().take(300).collect();
        let whole = Sha1::digest(&data);
        for split in [0, 1, 55, 56, 63, 64, 65, 128, 299, 300] {
            let mut s = Sha1::new();
            s.update(&data[..split]);
            s.update(&data[split..]);
            assert_eq!(s.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn boundary_lengths_pad_correctly() {
        // Lengths around the 56-byte padding boundary.
        for len in 54..=66 {
            let data = vec![0x5au8; len];
            // Must not panic and must be deterministic.
            assert_eq!(Sha1::digest(&data), Sha1::digest(&data));
        }
    }
}
