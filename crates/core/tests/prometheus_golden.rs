//! Golden-file test of the Prometheus text exporter: the exact bytes a
//! fixed [`RunReport`] renders to, pinned in `tests/golden/prometheus.txt`.
//! Every metric must carry `# HELP`/`# TYPE` headers and label values must
//! be escaped per the exposition format.
//!
//! Re-bless after an intentional format change with
//! `NBA_BLESS=1 cargo test -p nba-core --test prometheus_golden`.

use nba_core::fault::FaultReport;
use nba_core::runtime::RunReport;
use nba_core::stats::{LatencyHistogram, Snapshot};
use nba_core::telemetry::{report_to_prometheus, ElementProfile, ShardSample, TimeSample};
use nba_sim::Time;

/// A fully hand-built report: every section of the exporter exercised —
/// scalars, per-GPU and per-element label series (with a name that needs
/// escaping), per-shard gauges from the last sample, and fault counters.
fn fixture() -> RunReport {
    let mut latency = LatencyHistogram::new();
    for ns in [800, 1_200, 1_200, 5_000, 40_000] {
        latency.record_ns(ns);
    }
    let profile = |node: usize, element: &'static str, packets: u64| ElementProfile {
        node,
        element,
        batches: packets / 32,
        packets,
        drops: 0,
        cycles: packets * 100,
        busy: Time::from_us(packets),
        latency: LatencyHistogram::new(),
    };
    let shard = |shard: u32, occ: u64, w: f64| ShardSample {
        shard,
        ring_occupancy: occ,
        ring_high_water: occ * 3,
        enqueue_failed: u64::from(shard) * 2,
        shed: u64::from(shard) * 9,
        w,
    };
    let sample = |t_ms: u64, shards: Vec<ShardSample>| TimeSample {
        t: Time::from_ms(t_ms),
        tx_packets: 10_000,
        tx_mpps: 1.0,
        tx_gbps: 0.672,
        dropped: 0,
        rx_dropped: 0,
        latency_ewma_ns: 1_500,
        offloaded_batches: 12,
        offload_fraction: 0.5,
        gpu_busy: Vec::new(),
        shards,
        slo: None,
    };
    let mut stages = nba_core::audit::StageProfiles::new();
    for (stage, ns) in nba_core::audit::OffloadStage::ALL
        .iter()
        .zip([2_000u64, 1_500, 3_000, 500, 20_000, 2_500, 1_200])
    {
        stages.record(*stage, ns);
        stages.record(*stage, ns * 2);
    }
    stages.tasks = 2;
    RunReport {
        duration: Time::from_ms(50),
        tx_gbps: 9.5,
        tx_packets: 1_000_000,
        offered_packets: 1_100_000,
        offered_gbps: 10.0,
        rx_dropped: 42,
        window: Snapshot {
            dropped: 7,
            ..Snapshot::default()
        },
        latency,
        final_w: 0.625,
        gpu: vec![nba_gpu::TimelineStats {
            tasks: 9,
            kernel_busy: Time::from_us(500),
            ..nba_gpu::TimelineStats::default()
        }],
        elements: vec![
            profile(0, "IPlookup", 1_000_000),
            // The escaping case: quotes and backslashes in a label value
            // must round-trip per the exposition format.
            profile(1, "Queue \"fast\\slow\"", 999_958),
        ],
        samples: vec![
            // An early sample without shard gauges — the exporter must
            // pick the *last* sample that carries them.
            sample(10, Vec::new()),
            sample(40, vec![shard(0, 5, 0.5), shard(1, 17, 0.75)]),
        ],
        trace: Vec::new(),
        totals: Snapshot::default(),
        faults: FaultReport::default(),
        tx_capture: Vec::new(),
        stages: Some(stages),
        drift: Some(nba_core::audit::DriftReport {
            tasks: 2,
            rel_err: 0.125,
            events: 1,
            worst_stage: Some("launch".into()),
            worst_excess_ns: 40_000.0,
        }),
        slo: Some(nba_core::audit::SloReport {
            cfg: nba_core::audit::SloConfig {
                latency_ns: Some(1_000_000),
                min_mpps: Some(0.5),
                error_budget: 0.05,
            },
            windows: 10,
            latency_violations: 0,
            throughput_violations: 1,
            latency_burn: 0.0,
            throughput_burn: 2.0,
            final_p99_ns: 40_000,
            final_mpps: 20.0,
            met: false,
        }),
        decisions: None,
        flight: Vec::new(),
        health: {
            let mut h = nba_core::supervise::HealthReport {
                states: vec![
                    nba_core::supervise::WorkerState::Healthy,
                    nba_core::supervise::WorkerState::Dead,
                ],
                ..Default::default()
            };
            h.stats.shed_drop_tail = 9;
            h.stats.lost_in_ring = 5;
            h.stats.resteers = 1;
            h.stats.buckets_moved = 64;
            h
        },
        flows: None,
    }
}

#[test]
fn prometheus_export_matches_golden_file() {
    let got = report_to_prometheus(&fixture());
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/prometheus.txt");
    if std::env::var("NBA_BLESS").is_ok() {
        std::fs::write(path, &got).expect("bless golden file");
    }
    let want = std::fs::read_to_string(path)
        .expect("golden file missing — run once with NBA_BLESS=1 to create it");
    assert_eq!(
        got, want,
        "Prometheus exposition drifted from the golden file; if the change \
         is intentional, re-bless with NBA_BLESS=1"
    );
}

/// Structural invariants the golden bytes imply, asserted directly so a
/// careless re-bless cannot silently drop them: every emitted metric name
/// is preceded by its `# HELP` and `# TYPE` headers, and escaped label
/// values stay on one line.
#[test]
fn every_metric_has_help_and_type_headers() {
    let out = report_to_prometheus(&fixture());
    let mut declared: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for line in out.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            declared.insert(rest.split_whitespace().next().unwrap_or(""));
            continue;
        }
        if line.starts_with("# TYPE ") || line.is_empty() {
            continue;
        }
        let name = line
            .split(['{', ' '])
            .next()
            .expect("metric lines start with a name");
        assert!(
            declared.contains(name),
            "sample line before its # HELP header: {line}"
        );
    }
    assert!(
        out.contains(r#"element="Queue \"fast\\slow\"""#),
        "label escaping missing: {out}"
    );
    assert!(out.contains("nba_ring_occupancy{shard=\"1\"} 17"), "{out}");
    assert!(
        out.contains("nba_shard_offload_fraction{shard=\"1\"} 0.75"),
        "{out}"
    );
    // The audit-plane families introduced with the decision-audit work.
    assert!(
        out.contains("nba_offload_stage_mean_ns{stage=\"compute\"} 30000"),
        "{out}"
    );
    assert!(out.contains("nba_offload_stage_tasks_total 2"), "{out}");
    assert!(out.contains("nba_cost_drift_events_total 1"), "{out}");
    assert!(out.contains("nba_slo_throughput_burn 2"), "{out}");
    assert!(out.contains("nba_slo_met 0"), "{out}");
}
