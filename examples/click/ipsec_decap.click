// IPsec receive side: verify the ICV, decrypt, strip the ESP layout, then
// route the recovered inner packet. Matches
// `pipelines::ipsec_decap_gateway`.
src     :: FromInput();
chk     :: CheckIPHeader();
lb      :: LoadBalance();
verify  :: IPsecAuthVerify();
decrypt :: IPsecDecrypt();
decap   :: IPsecESPDecap();
rt      :: IPLookup();
ttl     :: DecIPTTL();
out     :: ToOutput();

src -> chk;
chk [0] -> lb -> verify -> decrypt -> decap -> rt -> ttl -> out;
chk [1] -> Discard;
