//! TX-side conformance capture: the per-packet record both runtimes emit so
//! a differential suite can prove they compute the same thing.
//!
//! A [`TxRecord`] is taken at the pipeline's emission point — after every
//! element ran, before the frame reaches a port's TX machinery — and holds
//! exactly the observable verdict of processing one packet: which flow it
//! belonged to, where the pipeline routed it, what the detection elements
//! concluded, and the final frame bytes. Two runs are semantically identical
//! iff their record multisets are equal (records are compared sorted, since
//! sharded runtimes interleave flows in nondeterministic order while keeping
//! per-flow order intact).

use crate::batch::{anno, Anno};
use nba_io::Packet;

/// The observable outcome of processing one packet.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct TxRecord {
    /// RSS hash of the packet's flow (the `FLOW_ID` annotation).
    pub flow: u64,
    /// The raw `IFACE_OUT` annotation — the pipeline's routing verdict,
    /// before any port-count wrapping.
    pub iface_out: u64,
    /// Aho–Corasick match annotation (`AC_MATCH`), zero when unset.
    pub ac_match: u64,
    /// Regex confirmation annotation (`RE_MATCH`), zero when unset.
    pub re_match: u64,
    /// The final frame bytes as emitted.
    pub frame: Vec<u8>,
}

impl TxRecord {
    /// Captures the record for `pkt` with its annotation set, as the packet
    /// leaves the pipeline.
    pub fn capture(pkt: &Packet, anno_set: &Anno) -> TxRecord {
        TxRecord {
            flow: anno_set.get(anno::FLOW_ID),
            iface_out: anno_set.get(anno::IFACE_OUT),
            ac_match: anno_set.get(anno::AC_MATCH),
            re_match: anno_set.get(anno::RE_MATCH),
            frame: pkt.data().to_vec(),
        }
    }

    /// FNV-1a digest of the frame bytes — a compact stand-in for the frame
    /// in sorted comparisons and failure messages.
    pub fn frame_digest(&self) -> u64 {
        fnv1a(&self.frame)
    }
}

/// 64-bit FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_vectors() {
        // Reference values for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn records_order_by_flow_first() {
        let a = TxRecord {
            flow: 1,
            iface_out: 9,
            ac_match: 0,
            re_match: 0,
            frame: vec![0xff],
        };
        let b = TxRecord {
            flow: 2,
            iface_out: 0,
            ac_match: 0,
            re_match: 0,
            frame: vec![],
        };
        assert!(a < b);
    }
}
