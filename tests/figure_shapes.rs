//! Qualitative shape assertions over the paper-figure reproductions.
//!
//! These run reduced sweeps of the real experiments and check the claims
//! the paper makes — who wins, where crossovers fall — rather than absolute
//! numbers. They take minutes, so they are ignored by default:
//!
//! ```sh
//! cargo test --release --test figure_shapes -- --ignored
//! ```

use nba_bench::experiments::{self, ExpOpts};

const QUICK: ExpOpts = ExpOpts { quick: true };

#[test]
#[ignore = "minutes-long sweep; run with --ignored"]
fn fig1_and_fig10_shapes() {
    let rows = experiments::split_experiment(QUICK);
    for r in &rows {
        // Splitting always costs throughput; masking always beats it.
        assert!(r.split < r.baseline * 0.95, "{r:?}");
        assert!(r.masked > r.split, "{r:?}");
    }
    // The worst case loses a third or more; prediction at 1 % minority
    // keeps the loss small.
    let worst = rows.iter().find(|r| r.minority_pct == 50).unwrap();
    assert!(worst.split < worst.baseline * 0.70, "{worst:?}");
    let best = rows.iter().find(|r| r.minority_pct == 1).unwrap();
    assert!(best.masked > best.baseline * 0.85, "{best:?}");
}

#[test]
#[ignore = "minutes-long sweep; run with --ignored"]
fn fig2_interior_optimum() {
    let rows = experiments::fig2(QUICK);
    let cpu_only = rows.first().unwrap().1;
    let gpu_only = rows.last().unwrap().1;
    let best = rows.iter().map(|r| r.1).fold(0.0f64, f64::max);
    // Neither extreme is optimal (the motivating observation of §2).
    assert!(best > cpu_only * 1.1, "best {best} vs cpu {cpu_only}");
    assert!(best > gpu_only * 1.1, "best {best} vs gpu {gpu_only}");
}

#[test]
#[ignore = "minutes-long sweep; run with --ignored"]
fn fig9_batching_gains() {
    let rows = experiments::fig9(QUICK);
    for (label, g) in &rows {
        let speedup = g[2] / g[0].max(1e-9);
        if label.contains("1500") {
            // Large frames gain little from computation batching.
            assert!(speedup < 1.5, "{label}: {speedup}");
        } else {
            // Small frames gain substantially (paper: 1.7x - 5.2x).
            assert!(speedup > 1.4, "{label}: {speedup}");
            assert!(speedup < 8.0, "{label}: {speedup}");
        }
        // Batch 64 within a whisker of batch 32 or better overall shape.
        assert!(
            g[2] >= g[1] * 0.9,
            "{label}: 64 ({}) << 32 ({})",
            g[2],
            g[1]
        );
    }
}

#[test]
#[ignore = "minutes-long sweep; run with --ignored"]
fn fig12_processor_crossovers() {
    let rows = experiments::fig12(QUICK);
    for (name, series) in &rows {
        let at = |size: usize| {
            let (_, c, g) = series.iter().find(|(s, _, _)| *s == size).unwrap();
            (*c, *g)
        };
        match name.as_str() {
            "IPv4" => {
                // CPU never loses for IPv4.
                let (c, g) = at(64);
                assert!(c >= g * 0.99, "IPv4 64B: cpu {c} gpu {g}");
            }
            "IPv6" => {
                // GPU wins at small frames.
                let (c, g) = at(64);
                assert!(g > c * 1.2, "IPv6 64B: cpu {c} gpu {g}");
            }
            "IPsec" => {
                // GPU wins small, CPU wins large: a crossover exists.
                let (c64, g64) = at(64);
                let (c1024, g1024) = at(1024);
                assert!(g64 > c64 * 1.2, "IPsec 64B: cpu {c64} gpu {g64}");
                assert!(c1024 > g1024 * 1.2, "IPsec 1024B: cpu {c1024} gpu {g1024}");
            }
            other => panic!("unexpected app {other}"),
        }
    }
}

#[test]
#[ignore = "minutes-long sweep; run with --ignored"]
fn fig14_gpu_latency_premium() {
    let rows = experiments::fig14(QUICK);
    let mean = |label: &str, gpu: bool| {
        rows.iter()
            .find(|r| r.label == label && r.gpu == gpu)
            .map(|r| r.mean_us)
            .unwrap()
    };
    // The paper: GPU-only configurations cost 8-14x the CPU-only mean.
    let ratio = mean("IPv4, 64B", true) / mean("IPv4, 64B", false);
    assert!((4.0..30.0).contains(&ratio), "IPv4 GPU/CPU latency {ratio}");
    // IPsec is the slowest of all CPU configurations.
    assert!(mean("IPsec, 64B", false) > mean("L2fwd, 64B", false));
}
