// NAT44: endpoint-independent source translation over the per-worker
// flow shards — external mappings allocated from per-bucket port slices,
// idle bindings expired by the logical clock. Matches `pipelines::nat44`.
src :: FromInput();
chk :: CheckIPHeader();
nat :: Nat44("ext_ips=4", "ports_per_ip=16384", "capacity=1048576");
out :: ToOutput();

src -> chk;
chk [0] -> nat -> out;
chk [1] -> Discard;
