//! DES ↔ live differential conformance: the same seeded workload pushed
//! through the deterministic simulator, the live runtime with one worker,
//! and the live runtime with four RSS-sharded workers must produce the
//! same per-packet verdicts and output frames — clean and under a seeded
//! fault plan.
//!
//! Per-packet verdicts are [`TxRecord`]s captured at the pipeline's TX
//! point on every runtime, canonicalized per app:
//!
//! * Routers (IPv4/IPv6) emit frames verbatim — compare everything.
//! * The IPsec gateway holds per-replica ESP sequence counters, so the
//!   ciphertext depends on which replica a flow landed on; conformance is
//!   judged on what a receiver can verify — the decrypted, authenticated
//!   plaintext via [`open_esp`].
//! * IDS assigns `IFACE_OUT` round-robin per replica (a load-spreading
//!   decision, not a per-packet verdict) — it is masked; the match
//!   annotations and frames must agree exactly.

use std::sync::Arc;
use std::time::Duration;

use nba::apps::ipsec::open_esp;
use nba::apps::{pipelines, AppConfig};
use nba::core::capture::{fnv1a, TxRecord};
use nba::core::element::ComputeMode;
use nba::core::fault::{WorkerKill, WorkerStall};
use nba::core::lb;
use nba::core::runtime::live::LiveReport;
use nba::core::runtime::live::{self, LiveConfig};
use nba::core::runtime::{des, PipelineBuilder, RunReport, RuntimeConfig};
use nba::core::supervise::TransitionReason;
use nba::core::{FaultConfig, FaultPlan, HealthReport, WorkerState};
use nba::io::{IpVersion, Limited, PacketSource, PayloadFill, SizeDist, TrafficConfig, TrafficGen};
use nba::sim::topology::{GpuSpec, PortSpec, SocketSpec};
use nba::sim::{Time, Topology};

/// Total packets per run: small enough to drain in milliseconds, large
/// enough to cover many flows, batches, and offload aggregates.
const BUDGET: u64 = 1200;

/// One NIC port, one socket, one GPU — the live runtime's implicit shape
/// (its IO thread models a single ingress port).
fn one_port_topology() -> Topology {
    Topology {
        sockets: vec![SocketSpec { cores: 4 }],
        gpus: vec![GpuSpec {
            name: "GTX 680".to_owned(),
            socket: 0,
        }],
        ports: vec![PortSpec {
            speed_gbps: 10.0,
            socket: 0,
        }],
    }
}

fn traffic(ip: IpVersion, payload: PayloadFill) -> TrafficConfig {
    TrafficConfig {
        offered_gbps: 10.0,
        size: SizeDist::Fixed(256),
        ip_version: ip,
        flows: 64,
        zipf_alpha: 0.0,
        payload,
        seed: 7,
    }
}

fn des_cfg(fault: FaultConfig) -> RuntimeConfig {
    RuntimeConfig {
        topology: one_port_topology(),
        workers_per_socket: 3,
        compute: ComputeMode::Full,
        warmup: Time::from_ms(2),
        measure: Time::from_ms(30),
        pool_size: 1 << 15,
        rxq_depth: 4096,
        capture: true,
        fault,
        ..RuntimeConfig::default()
    }
}

fn live_cfg(workers: usize, traffic: &TrafficConfig, fault: FaultConfig) -> LiveConfig {
    LiveConfig {
        workers,
        duration: Duration::from_secs(20), // deadline only; drains in ms
        traffic: traffic.clone(),
        compute: ComputeMode::Full,
        fault,
        io_threads: 1,
        max_packets: Some(BUDGET),
        drain: true,
        capture: true,
        ..LiveConfig::default()
    }
}

fn des_capture(
    build: &PipelineBuilder,
    traffic: &TrafficConfig,
    fault: FaultConfig,
) -> Vec<TxRecord> {
    let cfg = des_cfg(fault);
    let source = Limited::new(TrafficGen::new(traffic.clone()), BUDGET);
    let report = des::run_with_sources(
        &cfg,
        build,
        &lb::shared(Box::new(lb::FixedFraction::new(0.5))),
        vec![Box::new(source) as Box<dyn PacketSource>],
        traffic.offered_gbps,
    );
    assert_eq!(report.rx_dropped, 0, "DES run must be lossless");
    assert_eq!(
        report.faults.snapshot.dropped_packets, 0,
        "fault plan must be output-preserving"
    );
    report.tx_capture
}

fn live_capture(
    build: &PipelineBuilder,
    traffic: &TrafficConfig,
    fault: FaultConfig,
    workers: usize,
) -> Vec<TxRecord> {
    let cfg = live_cfg(workers, traffic, fault);
    let report = live::run_sharded(
        &cfg,
        build,
        &lb::replicated(|| Box::new(lb::FixedFraction::new(0.5))),
    );
    assert_eq!(report.rx_dropped, 0, "draining live run must be lossless");
    assert_eq!(
        report.faults.snapshot.dropped_packets, 0,
        "fault plan must be output-preserving"
    );
    assert_eq!(report.shards.len(), workers);
    report.tx_capture
}

/// Like [`des_capture`] but for drills that lose packets *by design*:
/// returns the whole report so the caller can reconcile the loss against
/// the self-healing plane's accounting instead of asserting losslessness.
fn des_drill(build: &PipelineBuilder, traffic: &TrafficConfig, fault: FaultConfig) -> RunReport {
    let cfg = des_cfg(fault);
    let source = Limited::new(TrafficGen::new(traffic.clone()), BUDGET);
    des::run_with_sources(
        &cfg,
        build,
        &lb::shared(Box::new(lb::FixedFraction::new(0.5))),
        vec![Box::new(source) as Box<dyn PacketSource>],
        traffic.offered_gbps,
    )
}

/// Live analogue of [`des_drill`].
fn live_drill(
    build: &PipelineBuilder,
    traffic: &TrafficConfig,
    fault: FaultConfig,
    workers: usize,
) -> LiveReport {
    let cfg = live_cfg(workers, traffic, fault);
    live::run_sharded(
        &cfg,
        build,
        &lb::replicated(|| Box::new(lb::FixedFraction::new(0.5))),
    )
}

fn kill_plan(worker: u32, at_packet: u64) -> FaultConfig {
    FaultConfig {
        plan: FaultPlan {
            worker_kill: vec![WorkerKill { worker, at_packet }],
            ..FaultPlan::default()
        },
        ..FaultConfig::default()
    }
}

fn stall_plan(worker: u32, at_packet: u64, millis: f64) -> FaultConfig {
    FaultConfig {
        plan: FaultPlan {
            worker_stall: vec![WorkerStall {
                worker,
                at_packet,
                millis,
            }],
            ..FaultPlan::default()
        },
        ..FaultConfig::default()
    }
}

/// A canonical, runtime-independent digest of one transmitted packet.
type Verdict = (u64, u64, u64, u64, u64);

/// Routers: everything observable must agree, frame bytes included.
fn canon_exact(records: &[TxRecord]) -> Vec<Verdict> {
    let mut v: Vec<Verdict> = records
        .iter()
        .map(|r| {
            (
                r.flow,
                r.iface_out,
                r.ac_match,
                r.re_match,
                r.frame_digest(),
            )
        })
        .collect();
    v.sort_unstable();
    v
}

/// IDS: mask the per-replica round-robin egress port.
fn canon_ids(records: &[TxRecord]) -> Vec<Verdict> {
    let mut v: Vec<Verdict> = records
        .iter()
        .map(|r| (r.flow, 0, r.ac_match, r.re_match, r.frame_digest()))
        .collect();
    v.sort_unstable();
    v
}

/// IPsec: verdict is the routing decision plus the decrypted,
/// authenticated inner payload — what the far gateway would recover.
fn canon_ipsec(records: &[TxRecord], app: &AppConfig) -> Vec<Verdict> {
    let sa = pipelines::sa_table(app.seed);
    let mut v: Vec<Verdict> = records
        .iter()
        .map(|r| {
            let (proto, plaintext) =
                open_esp(&r.frame, &sa).expect("every TX frame must verify and decrypt");
            (r.flow, r.iface_out, u64::from(proto), fnv1a(&plaintext), 0)
        })
        .collect();
    v.sort_unstable();
    v
}

/// Runs one app through all three runtimes and compares canonical verdicts.
fn assert_conformance(
    build: &PipelineBuilder,
    traffic: &TrafficConfig,
    fault: &FaultConfig,
    canon: impl Fn(&[TxRecord]) -> Vec<Verdict>,
) {
    let des = canon(&des_capture(build, traffic, fault.clone()));
    assert!(
        des.len() as u64 >= BUDGET / 2,
        "suspiciously few DES verdicts: {}",
        des.len()
    );
    let live1 = canon(&live_capture(build, traffic, fault.clone(), 1));
    assert_eq!(des, live1, "DES and live(1) verdicts diverge");
    let live4 = canon(&live_capture(build, traffic, fault.clone(), 4));
    assert_eq!(des, live4, "DES and live(4) verdicts diverge");
}

fn clean() -> FaultConfig {
    FaultConfig::default()
}

/// An output-preserving storm: transient errors, corrupt output blocks,
/// timeouts, and a death/revival window. Every one of these degrades to
/// retries or the bit-identical CPU fallback — never to a changed packet.
fn faulted() -> FaultConfig {
    FaultConfig {
        plan: FaultPlan {
            seed: 99,
            timeout: 0.05,
            transient: 0.10,
            corrupt: 0.05,
            die_at: Some(Time::from_ms(1)),
            revive_at: Some(Time::from_ms(3)),
            worker_kill: Vec::new(),
            worker_stall: Vec::new(),
        },
        ..FaultConfig::default()
    }
}

#[test]
fn ipv4_router_conforms() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 2048,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Zeros);
    assert_conformance(&pipelines::ipv4_router(&app), &t, &clean(), canon_exact);
}

#[test]
fn ipv6_router_conforms() {
    let app = AppConfig {
        ports: 4,
        v6_routes: 2048,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V6, PayloadFill::Zeros);
    assert_conformance(&pipelines::ipv6_router(&app), &t, &clean(), canon_exact);
}

#[test]
fn ipsec_gateway_conforms() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 1024,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Ascii);
    let build = pipelines::ipsec_gateway(&app);
    assert_conformance(&build, &t, &clean(), |r| canon_ipsec(r, &app));
}

#[test]
fn ids_conforms() {
    let app = AppConfig {
        ports: 4,
        ids_literals: 32,
        ids_regexes: 4,
        ..AppConfig::default()
    };
    let t = traffic(
        IpVersion::V4,
        PayloadFill::Plant {
            needle: b"EVILPATTERN".to_vec(),
            every: 7,
        },
    );
    let (build, _alerts) = pipelines::ids(&app);
    assert_conformance(&build, &t, &clean(), canon_ids);
}

#[test]
fn ipv4_router_conforms_under_faults() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 2048,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Zeros);
    assert_conformance(&pipelines::ipv4_router(&app), &t, &faulted(), canon_exact);
}

#[test]
fn ipsec_gateway_conforms_under_faults() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 1024,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Ascii);
    let build = pipelines::ipsec_gateway(&app);
    assert_conformance(&build, &t, &faulted(), |r| canon_ipsec(r, &app));
}

/// The IDS alert totals (not just per-packet annotations) must agree
/// between DES and the sharded live runtime.
#[test]
fn ids_alert_totals_conform() {
    let app = AppConfig {
        ports: 4,
        ids_literals: 32,
        ids_regexes: 4,
        ..AppConfig::default()
    };
    let t = traffic(
        IpVersion::V4,
        PayloadFill::Plant {
            needle: b"EVILPATTERN".to_vec(),
            every: 7,
        },
    );
    let (build_des, alerts_des) = pipelines::ids(&app);
    let _ = des_capture(&build_des, &t, clean());
    let des_hits = alerts_des
        .literal_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(des_hits > 0, "needle never detected in DES");

    let (build_live, alerts_live) = pipelines::ids(&app);
    let _ = live_capture(&build_live, &t, clean(), 4);
    let live_hits = alerts_live
        .literal_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(des_hits, live_hits, "alert totals diverge");
}

/// `Arc` plumbing: the suite's canonical builders must be shareable
/// across the runs above without rebuilding tables.
#[test]
fn repeated_runs_are_reproducible() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 512,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Zeros);
    let build: PipelineBuilder = Arc::clone(&pipelines::ipv4_router(&app));
    let a = canon_exact(&live_capture(&build, &t, clean(), 4));
    let b = canon_exact(&live_capture(&build, &t, clean(), 4));
    assert_eq!(a, b, "same seed, same config, different verdicts");
}

/// Asserts `drill` is a multiset subset of `clean` (both sorted) and
/// returns how many clean verdicts the drill is missing. Any verdict the
/// drill produced that the clean run never did is an immediate failure —
/// recovery must never *invent* output, only lose a bounded window of it.
fn missing_verdicts(clean: &[Verdict], drill: &[Verdict]) -> u64 {
    let mut i = 0usize;
    let mut missing = 0u64;
    for d in drill {
        loop {
            assert!(
                i < clean.len() && clean[i] <= *d,
                "drill produced a verdict absent from the clean run: {d:?}"
            );
            let hit = clean[i] == *d;
            i += 1;
            if hit {
                break;
            }
            missing += 1;
        }
    }
    missing + (clean.len() - i) as u64
}

/// Shared kill-drill assertions, applied per runtime against that
/// runtime's *own* clean baseline: the drill's verdicts are a multiset
/// subset of the clean run's (bit-identical outside the loss window),
/// every missing packet is attributed by the self-healing counters, the
/// supervisor log records the quarantine edge, and replaying the log
/// reproduces the final worker states the report carries.
#[allow(clippy::too_many_arguments)]
fn assert_kill_drill(
    label: &str,
    killed: u32,
    clean_v: &[Verdict],
    clean_elem_drops: u64,
    drill_v: &[Verdict],
    drill_elem_drops: u64,
    unattributed: u64, // rx_dropped + fault-plan drops; both expected 0 here
    health: &HealthReport,
    expect_respawns: u64,
) {
    assert!(!drill_v.is_empty(), "{label}: no TX at all after the kill");
    let missing = missing_verdicts(clean_v, drill_v);
    assert!(
        missing > 0,
        "{label}: the kill drill lost nothing — fault never fired?"
    );
    assert_eq!(unattributed, 0, "{label}: loss outside the healing plane");
    // Element drops are deterministic per packet, so the drill can only
    // have *fewer* (a packet lost pre-processing is never element-dropped).
    assert!(
        clean_elem_drops >= drill_elem_drops,
        "{label}: drill element drops exceed clean run's"
    );
    // Conservation: clean_tx − drill_tx = lost − (element drops the lost
    // packets would have suffered). Every missing verdict is accounted.
    assert_eq!(
        missing + (clean_elem_drops - drill_elem_drops),
        health.stats.total_lost(),
        "{label}: loss not fully attributed (shed + in-ring + in-flight)"
    );
    assert!(
        health.log.events.iter().any(|e| e.worker == killed
            && e.to == WorkerState::Dead
            && e.reason == TransitionReason::Crash),
        "{label}: no Dead(crash) edge for worker {killed} in the supervisor log"
    );
    let replayed = health
        .log
        .replay()
        .unwrap_or_else(|e| panic!("{label}: supervisor log does not replay: {e}"));
    for (w, s) in &replayed {
        assert_eq!(
            health.states[*w as usize], *s,
            "{label}: replayed state for worker {w} diverges from the report"
        );
    }
    assert_eq!(
        health.stats.respawns, expect_respawns,
        "{label}: unexpected respawn count"
    );
}

/// The seeded worker-kill drill (ISSUE 9 acceptance): kill worker 0 after
/// its 100th packet in every runtime. Post-recovery output must equal the
/// clean run minus a bounded, fully attributed loss window.
#[test]
fn worker_kill_drill_bounds_and_attributes_loss() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 2048,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Zeros);
    let build = pipelines::ipv4_router(&app);

    // DES: 3 workers, no respawn (a Done entity never steps again) —
    // survivors 1 and 2 absorb the re-steered buckets.
    let clean_des = des_drill(&build, &t, clean());
    assert!(clean_des.health.stats.is_clean(), "clean DES run not clean");
    let drill_des = des_drill(&build, &t, kill_plan(0, 100));
    assert_kill_drill(
        "DES",
        0,
        &canon_exact(&clean_des.tx_capture),
        clean_des.totals.dropped,
        &canon_exact(&drill_des.tx_capture),
        drill_des.totals.dropped,
        drill_des.rx_dropped + drill_des.faults.snapshot.dropped_packets,
        &drill_des.health,
        0,
    );
    assert!(
        drill_des.health.stats.resteers >= 1,
        "DES: dead shard's buckets never re-steered"
    );

    // Live, 4 shards: the supervisor re-steers to three survivors and
    // spawns a replacement that re-acquires the buckets.
    // (Only loss counters are asserted clean here: a loaded machine may
    // log benign Suspect flapping on a live run, but never loss.)
    let clean_l4 = live_drill(&build, &t, clean(), 4);
    assert_eq!(clean_l4.health.stats.total_lost(), 0, "clean live(4) lost");
    assert_eq!(clean_l4.health.stats.respawns, 0);
    let drill_l4 = live_drill(&build, &t, kill_plan(0, 100), 4);
    assert_kill_drill(
        "live(4)",
        0,
        &canon_exact(&clean_l4.tx_capture),
        clean_l4.totals.dropped,
        &canon_exact(&drill_l4.tx_capture),
        drill_l4.totals.dropped,
        drill_l4.rx_dropped + drill_l4.faults.snapshot.dropped_packets,
        &drill_l4.health,
        1,
    );
    assert!(
        drill_l4.health.stats.resteers >= 1,
        "live(4): dead shard's buckets never re-steered"
    );

    // Live, 1 shard: no survivors to re-steer to (moved = 0), so loss is
    // bounded only by detection + respawn latency — still fully attributed.
    let clean_l1 = live_drill(&build, &t, clean(), 1);
    let drill_l1 = live_drill(&build, &t, kill_plan(0, 100), 1);
    assert_kill_drill(
        "live(1)",
        0,
        &canon_exact(&clean_l1.tx_capture),
        clean_l1.totals.dropped,
        &canon_exact(&drill_l1.tx_capture),
        drill_l1.totals.dropped,
        drill_l1.rx_dropped + drill_l1.faults.snapshot.dropped_packets,
        &drill_l1.health,
        1,
    );
}

/// A stalled-then-resumed worker must be *lossless*: the supervisor may
/// presume it dead and re-steer its buckets meanwhile, but the worker
/// still owns its rings and drains them on resume — the drill's verdicts
/// are bit-identical to the clean run's, not merely a subset.
#[test]
fn worker_stall_drill_is_lossless() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 2048,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Zeros);
    let build = pipelines::ipv4_router(&app);

    let clean_des = canon_exact(&des_drill(&build, &t, clean()).tx_capture);
    let stall_des = des_drill(&build, &t, stall_plan(1, 100, 20.0));
    assert_eq!(
        canon_exact(&stall_des.tx_capture),
        clean_des,
        "DES: stall drill diverges from the clean run"
    );
    assert_eq!(
        stall_des.health.stats.total_lost(),
        0,
        "DES: stall lost packets"
    );
    assert!(stall_des.health.log.replay().is_ok());

    let clean_l4 = canon_exact(&live_drill(&build, &t, clean(), 4).tx_capture);
    let stall_l4 = live_drill(&build, &t, stall_plan(1, 100, 20.0), 4);
    assert_eq!(
        canon_exact(&stall_l4.tx_capture),
        clean_l4,
        "live(4): stall drill diverges from the clean run"
    );
    assert_eq!(
        stall_l4.health.stats.total_lost(),
        0,
        "live(4): stall lost packets"
    );
    assert_eq!(
        stall_l4.health.stats.respawns, 0,
        "stall must never respawn"
    );
    assert!(stall_l4.health.log.replay().is_ok());
}
