//! Versioned benchmark artifacts (`BENCH_<app>.json`) and the regression
//! gate.
//!
//! A [`BenchReport`] captures one app run as a machine-readable record:
//! provenance (git SHA, rustc version, config digest), headline throughput
//! (Gbps/Mpps), end-to-end latency percentiles, per-element attribution,
//! and balancer convergence (final `w`, settle time, the whole `w`
//! trajectory). Reports serialize to JSON with our own writer and parse
//! back with [`nba_core::json`], so the artifact pipeline stays
//! dependency-free.
//!
//! [`compare`] diffs two reports under per-metric [`Tolerances`]. The gate
//! is one-sided — improvements never fail — and deliberately generous by
//! default: the DES runtime is deterministic, so only real cliffs should
//! trip CI, not noise.
//!
//! All latency fields are nanoseconds with the `_ns` suffix (see
//! DESIGN.md, "Units").

use nba_core::json::{self, Value};
use nba_core::runtime::{RunReport, RuntimeConfig};
use nba_core::stats::LatencyHistogram;
use nba_core::telemetry::{json_escape, json_f64, TimeSample};

use crate::table::Table;

/// Version of the `BENCH_*.json` schema this code writes. Version 2 added
/// the `faults` section; version 3 added the optional `scaling` section
/// (throughput-vs-workers series); version 4 added the optional audit
/// sections (`offload_stages`, `drift`, `slo`); version 5 added the
/// optional `flows` section (stateful flow-table accounting). Earlier
/// artifacts still parse (with the missing sections defaulted) so
/// existing baselines stay valid.
pub const SCHEMA_VERSION: u64 = 5;

/// Oldest schema version [`BenchReport::parse`] accepts.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// End-to-end latency percentile summary, nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Mean.
    pub mean_ns: u64,
    /// Maximum observed.
    pub max_ns: u64,
    /// Sample count.
    pub count: u64,
}

impl LatencySummary {
    /// Summarizes a recorded histogram.
    pub fn from_histogram(h: &LatencyHistogram) -> LatencySummary {
        if h.count() == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            p50_ns: h.percentile_ns(50.0),
            p90_ns: h.percentile_ns(90.0),
            p99_ns: h.percentile_ns(99.0),
            p999_ns: h.percentile_ns(99.9),
            mean_ns: h.mean_ns(),
            max_ns: h.max_ns(),
            count: h.count(),
        }
    }
}

/// Per-element attribution: work totals plus service-time percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementReport {
    /// Node index in the element graph.
    pub node: u64,
    /// Element class name.
    pub element: String,
    /// Batches processed.
    pub batches: u64,
    /// Packets processed.
    pub packets: u64,
    /// Packets dropped here.
    pub drops: u64,
    /// Busy time, nanoseconds.
    pub busy_ns: u64,
    /// Median per-visit service time, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile per-visit service time, nanoseconds.
    pub p99_ns: u64,
}

/// One point of the balancer's `w` trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WPoint {
    /// Run time of the sample, nanoseconds.
    pub t_ns: u64,
    /// Offloading fraction at that time.
    pub w: f64,
}

/// Balancer convergence statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BalancerReport {
    /// Final offloading fraction.
    pub final_w: f64,
    /// Time after which `w` stayed within the settle band around
    /// `final_w`, nanoseconds; `None` when it never settled or the run
    /// produced no samples.
    pub settle_ns: Option<u64>,
    /// The sampled `w` trajectory (empty when sampling was off).
    pub trajectory: Vec<WPoint>,
}

/// One device-quarantine interval, run time in nanoseconds. `end_ns` is
/// `None` when the device was still quarantined at the end of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineSpan {
    /// When the circuit breaker tripped.
    pub start_ns: u64,
    /// When the device was re-admitted, if it was.
    pub end_ns: Option<u64>,
}

/// Fault-injection and recovery accounting (schema v2). All counts are
/// zero and `quarantines` empty on a clean run, which is what the
/// regression gate asserts when comparing against a clean baseline.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultsSection {
    /// Total faults injected (all kinds).
    pub injected: u64,
    /// Device-side retries before giving up on a task.
    pub retried: u64,
    /// Packets re-executed on the CPU path after a device failure.
    pub fell_back_packets: u64,
    /// Packets dropped because a poisoned batch was discarded.
    pub dropped_packets: u64,
    /// Worker/device panics contained by the runtime.
    pub panics_contained: u64,
    /// Device quarantine intervals, in run order.
    pub quarantines: Vec<QuarantineSpan>,
}

/// One point of a throughput-vs-workers scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalePoint {
    /// Worker (RX queue) count of this run.
    pub workers: u64,
    /// Transmitted throughput at that count, Mpps.
    pub tx_mpps: f64,
    /// Transmitted throughput at that count, Gbps.
    pub tx_gbps: f64,
}

/// A per-core scaling sweep (the paper's Figure 8 axis), schema v3. Each
/// point is one full run of the same app and traffic at a different worker
/// count.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingSection {
    /// Which runtime ran the sweep: `"des"` (simulated workers, the
    /// deterministic CI artifact) or `"live"` (real threads).
    pub runtime: String,
    /// Points in ascending worker order.
    pub series: Vec<ScalePoint>,
}

/// One offload sub-stage's timing summary (schema v4).
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Stage name (`enqueue_wait` / `gather` / `copy_in` / `launch` /
    /// `compute` / `copy_out` / `scatter`).
    pub stage: String,
    /// Mean nanoseconds per offload task.
    pub mean_ns: f64,
    /// 99th-percentile nanoseconds per offload task.
    pub p99_ns: u64,
    /// Total nanoseconds accumulated over the run.
    pub total_ns: u64,
}

/// Offload stage decomposition (schema v4): where device round-trip time
/// actually went, one row per sub-stage.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadStagesSection {
    /// Offload tasks decomposed.
    pub tasks: u64,
    /// Per-stage rows in pipeline order.
    pub stages: Vec<StageRow>,
}

/// Cost-model drift accounting (schema v4).
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSection {
    /// Tasks the detector scored.
    pub tasks: u64,
    /// Final smoothed relative error between predicted and measured cost.
    pub rel_err: f64,
    /// Drift events raised (the detector latches at 1).
    pub events: u64,
    /// Stage with the largest accumulated unpredicted time, if any.
    pub worst_stage: Option<String>,
    /// That stage's accumulated unpredicted nanoseconds.
    pub worst_excess_ns: f64,
}

/// SLO budget verdict (schema v4): the declared objectives plus burn-rate
/// accounting over the run's sample windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSection {
    /// Latency budget, nanoseconds (None = not tracked).
    pub latency_ns: Option<u64>,
    /// Throughput floor, Mpps (None = not tracked).
    pub min_mpps: Option<f64>,
    /// Fraction of sample windows allowed to violate.
    pub error_budget: f64,
    /// Sample windows scored.
    pub windows: u64,
    /// Windows that violated the latency budget.
    pub latency_violations: u64,
    /// Windows that violated the throughput floor.
    pub throughput_violations: u64,
    /// Latency burn rate (>1 = budget blown).
    pub latency_burn: f64,
    /// Throughput burn rate (>1 = budget blown).
    pub throughput_burn: f64,
    /// Every budget held over the run.
    pub met: bool,
}

/// Stateful flow-table accounting (schema v5): run-wide totals across
/// every worker shard, straight from the [`nba_core::flow::FlowRegistry`]
/// report. Present only when the app carries stateful elements (NAT,
/// conntrack, Maglev) — plain forwarding apps have no flow plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlowsSection {
    /// Flows resident in the tables at the end of the run.
    pub live: u64,
    /// New flow entries created.
    pub inserts: u64,
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries reaped after the idle TTL.
    pub evict_idle: u64,
    /// Embryonic (half-open) entries reaped early.
    pub evict_embryonic: u64,
    /// Entries removed by protocol close (FIN/RST).
    pub evict_closed: u64,
    /// Entries invalidated by worker death.
    pub evict_death: u64,
    /// Foreign-bucket entries adopted after a re-steer.
    pub migrated_in: u64,
    /// Packets dropped because a table was full.
    pub table_full_drops: u64,
    /// Packets dropped for lacking a conntrack entry.
    pub out_of_state_drops: u64,
    /// NAT ports held at the end of the run.
    pub nat_ports_in_use: u64,
}

impl FlowsSection {
    /// Evictions across every reason.
    pub fn evictions_total(&self) -> u64 {
        self.evict_idle + self.evict_embryonic + self.evict_closed + self.evict_death
    }
}

/// Band half-width around `final_w` used for settle-time detection.
const SETTLE_BAND: f64 = 0.05;

/// Settle time from a sampled trajectory: the time of the first sample
/// after which every later sample stays within [`SETTLE_BAND`] of the
/// final fraction.
pub fn settle_time_ns(samples: &[TimeSample], final_w: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut settled_at = None;
    for s in samples {
        if (s.offload_fraction - final_w).abs() <= SETTLE_BAND {
            settled_at.get_or_insert(s.t.as_ns());
        } else {
            settled_at = None;
        }
    }
    settled_at
}

/// One benchmark run as a versioned, machine-readable artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u64,
    /// App name (`ipv4` / `ipv6` / `ipsec` / `ids`).
    pub app: String,
    /// `git rev-parse HEAD` of the working tree, or `"unknown"`.
    pub git_sha: String,
    /// `rustc --version`, or `"unknown"`.
    pub rustc: String,
    /// FNV-1a digest over the run configuration (hex). Comparing reports
    /// with different digests still works but warns: the numbers describe
    /// different experiments.
    pub config_digest: String,
    /// Whether the run used the shortened `NBA_QUICK` windows.
    pub quick: bool,
    /// Measurement window length, nanoseconds.
    pub duration_ns: u64,
    /// Offered load over the window, Gbps.
    pub offered_gbps: f64,
    /// Transmitted throughput, Gbps (the paper's headline metric).
    pub tx_gbps: f64,
    /// Transmitted throughput, Mpps.
    pub tx_mpps: f64,
    /// RX-ring drops in the window.
    pub rx_dropped: u64,
    /// End-to-end round-trip latency summary.
    pub latency: LatencySummary,
    /// Balancer convergence.
    pub balancer: BalancerReport,
    /// Fault-injection and recovery accounting (all-zero on clean runs;
    /// defaults to zero when parsing version-1 artifacts).
    pub faults: FaultsSection,
    /// Per-element attribution, sorted by node.
    pub elements: Vec<ElementReport>,
    /// Throughput-vs-workers sweep, when the run was a scaling sweep
    /// (`None` for single-configuration runs and pre-v3 artifacts).
    pub scaling: Option<ScalingSection>,
    /// Offload stage decomposition (`None` unless stage stats were on).
    pub offload_stages: Option<OffloadStagesSection>,
    /// Cost-model drift accounting (`None` unless drift detection was on).
    pub drift: Option<DriftSection>,
    /// SLO budget verdict (`None` unless an SLO was configured).
    pub slo: Option<SloSection>,
    /// Stateful flow-table totals (`None` for stateless apps and pre-v5
    /// artifacts).
    pub flows: Option<FlowsSection>,
}

/// FNV-1a over the configuration knobs that define the experiment. Not a
/// cryptographic identity — a cheap "same experiment?" check.
pub fn config_digest(cfg: &RuntimeConfig) -> String {
    let canon = format!(
        "sockets={} ports={} wps={} io={} comp={} agg={} aggto={} inflight={} backlog={} reuse={} policy={:?} compute={:?} warmup={} measure={}",
        cfg.topology.sockets.len(),
        cfg.topology.ports.len(),
        cfg.workers_per_socket,
        cfg.io_batch,
        cfg.comp_batch,
        cfg.offload_aggregate,
        cfg.offload_agg_timeout.as_ns(),
        cfg.gpu_max_inflight,
        cfg.device_backlog_batches,
        cfg.datablock_reuse,
        cfg.branch_policy,
        cfg.compute,
        cfg.warmup.as_ns(),
        cfg.measure.as_ns(),
    );
    // Only an *active* fault plan changes the experiment; keeping the canon
    // string unchanged otherwise means clean digests still match artifacts
    // written before faults existed.
    let canon = if cfg.fault.plan.is_active() {
        format!("{canon} faults={}", cfg.fault.plan.render())
    } else {
        canon
    };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canon.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// `git rev-parse HEAD`, or `"unknown"` outside a repository.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `rustc --version`, or `"unknown"`.
pub fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

impl BenchReport {
    /// Builds a report from a finished run. Provenance fields (`git_sha`,
    /// `rustc`) are captured from the environment here.
    pub fn from_run(app: &str, cfg: &RuntimeConfig, run: &RunReport, quick: bool) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            app: app.to_string(),
            git_sha: git_sha(),
            rustc: rustc_version(),
            config_digest: config_digest(cfg),
            quick,
            duration_ns: run.duration.as_ns(),
            offered_gbps: run.offered_gbps,
            tx_gbps: run.tx_gbps,
            tx_mpps: run.tx_mpps(),
            rx_dropped: run.rx_dropped,
            latency: LatencySummary::from_histogram(&run.latency),
            balancer: BalancerReport {
                final_w: run.final_w,
                settle_ns: settle_time_ns(&run.samples, run.final_w),
                trajectory: run
                    .samples
                    .iter()
                    .map(|s| WPoint {
                        t_ns: s.t.as_ns(),
                        w: s.offload_fraction,
                    })
                    .collect(),
            },
            faults: FaultsSection {
                injected: run.faults.snapshot.injected(),
                retried: run.faults.snapshot.retried,
                fell_back_packets: run.faults.snapshot.fell_back_packets,
                dropped_packets: run.faults.snapshot.dropped_packets,
                panics_contained: run.faults.snapshot.panics_contained,
                quarantines: run
                    .faults
                    .quarantines
                    .iter()
                    .map(|(start, end)| QuarantineSpan {
                        start_ns: start.as_ns(),
                        end_ns: end.map(|t| t.as_ns()),
                    })
                    .collect(),
            },
            elements: run
                .elements
                .iter()
                .map(|p| ElementReport {
                    node: p.node as u64,
                    element: p.element.to_string(),
                    batches: p.batches,
                    packets: p.packets,
                    drops: p.drops,
                    busy_ns: p.busy.as_ns(),
                    p50_ns: p.latency.percentile_ns(50.0),
                    p99_ns: p.latency.percentile_ns(99.0),
                })
                .collect(),
            scaling: None,
            offload_stages: run.stages.as_ref().map(|st| OffloadStagesSection {
                tasks: st.tasks,
                stages: nba_core::audit::OffloadStage::ALL
                    .iter()
                    .map(|s| StageRow {
                        stage: s.as_str().to_string(),
                        mean_ns: st.mean_ns(*s),
                        p99_ns: st.hist[s.index()].percentile_ns(99.0),
                        total_ns: st.total_ns[s.index()],
                    })
                    .collect(),
            }),
            drift: run.drift.as_ref().map(|d| DriftSection {
                tasks: d.tasks,
                rel_err: d.rel_err,
                events: d.events,
                worst_stage: d.worst_stage.clone(),
                worst_excess_ns: d.worst_excess_ns,
            }),
            slo: run.slo.as_ref().map(|s| SloSection {
                latency_ns: s.cfg.latency_ns,
                min_mpps: s.cfg.min_mpps,
                error_budget: s.cfg.error_budget,
                windows: s.windows,
                latency_violations: s.latency_violations,
                throughput_violations: s.throughput_violations,
                latency_burn: s.latency_burn,
                throughput_burn: s.throughput_burn,
                met: s.met,
            }),
            flows: run.flows.as_ref().map(|f| {
                let t = f.totals();
                FlowsSection {
                    live: t.live,
                    inserts: t.inserts,
                    hits: t.hits,
                    misses: t.misses,
                    evict_idle: t.evict_idle,
                    evict_embryonic: t.evict_embryonic,
                    evict_closed: t.evict_closed,
                    evict_death: t.evict_death,
                    migrated_in: t.migrated_in,
                    table_full_drops: t.table_full_drops,
                    out_of_state_drops: t.out_of_state_drops,
                    nat_ports_in_use: t.nat_ports_in_use,
                }
            }),
        }
    }

    /// Attaches a scaling sweep to the report (points are sorted by
    /// worker count).
    pub fn with_scaling(mut self, runtime: &str, mut series: Vec<ScalePoint>) -> BenchReport {
        series.sort_by_key(|p| p.workers);
        self.scaling = Some(ScalingSection {
            runtime: runtime.to_string(),
            series,
        });
        self
    }

    /// Serializes to pretty-printed JSON (the `BENCH_*.json` artifact).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema_version\": {},\n", self.schema_version));
        s.push_str(&format!("  \"app\": \"{}\",\n", json_escape(&self.app)));
        s.push_str(&format!(
            "  \"git_sha\": \"{}\",\n",
            json_escape(&self.git_sha)
        ));
        s.push_str(&format!("  \"rustc\": \"{}\",\n", json_escape(&self.rustc)));
        s.push_str(&format!(
            "  \"config_digest\": \"{}\",\n",
            json_escape(&self.config_digest)
        ));
        s.push_str(&format!("  \"quick\": {},\n", self.quick));
        s.push_str(&format!("  \"duration_ns\": {},\n", self.duration_ns));
        s.push_str(&format!(
            "  \"offered_gbps\": {},\n",
            json_f64(self.offered_gbps)
        ));
        s.push_str(&format!("  \"tx_gbps\": {},\n", json_f64(self.tx_gbps)));
        s.push_str(&format!("  \"tx_mpps\": {},\n", json_f64(self.tx_mpps)));
        s.push_str(&format!("  \"rx_dropped\": {},\n", self.rx_dropped));
        let l = &self.latency;
        s.push_str(&format!(
            "  \"latency\": {{\"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}, \"count\": {}}},\n",
            l.p50_ns, l.p90_ns, l.p99_ns, l.p999_ns, l.mean_ns, l.max_ns, l.count
        ));
        s.push_str("  \"balancer\": {\n");
        s.push_str(&format!(
            "    \"final_w\": {},\n",
            json_f64(self.balancer.final_w)
        ));
        match self.balancer.settle_ns {
            Some(ns) => s.push_str(&format!("    \"settle_ns\": {ns},\n")),
            None => s.push_str("    \"settle_ns\": null,\n"),
        }
        let traj: Vec<String> = self
            .balancer
            .trajectory
            .iter()
            .map(|p| format!("{{\"t_ns\": {}, \"w\": {}}}", p.t_ns, json_f64(p.w)))
            .collect();
        s.push_str(&format!("    \"trajectory\": [{}]\n", traj.join(", ")));
        s.push_str("  },\n");
        let f = &self.faults;
        s.push_str("  \"faults\": {\n");
        s.push_str(&format!("    \"injected\": {},\n", f.injected));
        s.push_str(&format!("    \"retried\": {},\n", f.retried));
        s.push_str(&format!(
            "    \"fell_back_packets\": {},\n",
            f.fell_back_packets
        ));
        s.push_str(&format!(
            "    \"dropped_packets\": {},\n",
            f.dropped_packets
        ));
        s.push_str(&format!(
            "    \"panics_contained\": {},\n",
            f.panics_contained
        ));
        let spans: Vec<String> = f
            .quarantines
            .iter()
            .map(|q| {
                let end = match q.end_ns {
                    Some(ns) => ns.to_string(),
                    None => "null".to_string(),
                };
                format!("{{\"start_ns\": {}, \"end_ns\": {end}}}", q.start_ns)
            })
            .collect();
        s.push_str(&format!("    \"quarantines\": [{}]\n", spans.join(", ")));
        s.push_str("  },\n");
        if let Some(sc) = &self.scaling {
            s.push_str("  \"scaling\": {\n");
            s.push_str(&format!(
                "    \"runtime\": \"{}\",\n",
                json_escape(&sc.runtime)
            ));
            let pts: Vec<String> = sc
                .series
                .iter()
                .map(|p| {
                    format!(
                        "{{\"workers\": {}, \"tx_mpps\": {}, \"tx_gbps\": {}}}",
                        p.workers,
                        json_f64(p.tx_mpps),
                        json_f64(p.tx_gbps)
                    )
                })
                .collect();
            s.push_str(&format!("    \"series\": [{}]\n", pts.join(", ")));
            s.push_str("  },\n");
        }
        if let Some(st) = &self.offload_stages {
            s.push_str("  \"offload_stages\": {\n");
            s.push_str(&format!("    \"tasks\": {},\n", st.tasks));
            let rows: Vec<String> = st
                .stages
                .iter()
                .map(|r| {
                    format!(
                        "{{\"stage\": \"{}\", \"mean_ns\": {}, \"p99_ns\": {}, \"total_ns\": {}}}",
                        json_escape(&r.stage),
                        json_f64(r.mean_ns),
                        r.p99_ns,
                        r.total_ns
                    )
                })
                .collect();
            s.push_str(&format!("    \"stages\": [{}]\n", rows.join(", ")));
            s.push_str("  },\n");
        }
        if let Some(d) = &self.drift {
            let worst = match &d.worst_stage {
                Some(w) => format!("\"{}\"", json_escape(w)),
                None => "null".to_string(),
            };
            s.push_str(&format!(
                "  \"drift\": {{\"tasks\": {}, \"rel_err\": {}, \"events\": {}, \"worst_stage\": {worst}, \"worst_excess_ns\": {}}},\n",
                d.tasks,
                json_f64(d.rel_err),
                d.events,
                json_f64(d.worst_excess_ns)
            ));
        }
        if let Some(sl) = &self.slo {
            let lat = match sl.latency_ns {
                Some(ns) => ns.to_string(),
                None => "null".to_string(),
            };
            let mpps = match sl.min_mpps {
                Some(m) => json_f64(m),
                None => "null".to_string(),
            };
            s.push_str("  \"slo\": {\n");
            s.push_str(&format!(
                "    \"latency_ns\": {lat}, \"min_mpps\": {mpps}, \"error_budget\": {},\n",
                json_f64(sl.error_budget)
            ));
            s.push_str(&format!(
                "    \"windows\": {}, \"latency_violations\": {}, \"throughput_violations\": {},\n",
                sl.windows, sl.latency_violations, sl.throughput_violations
            ));
            s.push_str(&format!(
                "    \"latency_burn\": {}, \"throughput_burn\": {}, \"met\": {}\n",
                json_f64(sl.latency_burn),
                json_f64(sl.throughput_burn),
                sl.met
            ));
            s.push_str("  },\n");
        }
        if let Some(fl) = &self.flows {
            s.push_str("  \"flows\": {\n");
            s.push_str(&format!(
                "    \"live\": {}, \"inserts\": {}, \"hits\": {}, \"misses\": {},\n",
                fl.live, fl.inserts, fl.hits, fl.misses
            ));
            s.push_str(&format!(
                "    \"evict_idle\": {}, \"evict_embryonic\": {}, \"evict_closed\": {}, \"evict_death\": {},\n",
                fl.evict_idle, fl.evict_embryonic, fl.evict_closed, fl.evict_death
            ));
            s.push_str(&format!(
                "    \"migrated_in\": {}, \"table_full_drops\": {}, \"out_of_state_drops\": {}, \"nat_ports_in_use\": {}\n",
                fl.migrated_in, fl.table_full_drops, fl.out_of_state_drops, fl.nat_ports_in_use
            ));
            s.push_str("  },\n");
        }
        s.push_str("  \"elements\": [\n");
        for (i, e) in self.elements.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"node\": {}, \"element\": \"{}\", \"batches\": {}, \"packets\": {}, \"drops\": {}, \"busy_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}{}\n",
                e.node,
                json_escape(&e.element),
                e.batches,
                e.packets,
                e.drops,
                e.busy_ns,
                e.p50_ns,
                e.p99_ns,
                if i + 1 < self.elements.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Parses a report back from JSON, validating the schema version.
    pub fn parse(text: &str) -> Result<BenchReport, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let obj = v.as_obj().ok_or("report is not a JSON object")?;
        let need = |k: &str| -> Result<&Value, String> {
            obj.get(k).ok_or_else(|| format!("missing field '{k}'"))
        };
        let u64_of = |k: &str| -> Result<u64, String> {
            need(k)?
                .as_u64()
                .ok_or_else(|| format!("field '{k}' is not a non-negative integer"))
        };
        let f64_of = |k: &str| -> Result<f64, String> {
            need(k)?
                .as_f64()
                .ok_or_else(|| format!("field '{k}' is not a number"))
        };
        let str_of = |k: &str| -> Result<String, String> {
            Ok(need(k)?
                .as_str()
                .ok_or_else(|| format!("field '{k}' is not a string"))?
                .to_string())
        };
        let schema_version = u64_of("schema_version")?;
        if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&schema_version) {
            return Err(format!(
                "unsupported schema_version {schema_version} \
                 (this build reads {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
            ));
        }
        let lat = need("latency")?;
        let lat_u64 = |k: &str| -> Result<u64, String> {
            lat.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("latency.{k} missing or not an integer"))
        };
        let bal = need("balancer")?;
        let final_w = bal
            .get("final_w")
            .and_then(Value::as_f64)
            .ok_or("balancer.final_w missing or not a number")?;
        let settle_ns = match bal.get("settle_ns") {
            Some(Value::Null) | None => None,
            Some(v) => Some(v.as_u64().ok_or("balancer.settle_ns is not an integer")?),
        };
        let mut trajectory = Vec::new();
        if let Some(traj) = bal.get("trajectory").and_then(Value::as_arr) {
            for p in traj {
                trajectory.push(WPoint {
                    t_ns: p
                        .get("t_ns")
                        .and_then(Value::as_u64)
                        .ok_or("trajectory point missing t_ns")?,
                    w: p.get("w")
                        .and_then(Value::as_f64)
                        .ok_or("trajectory point missing w")?,
                });
            }
        }
        // Version-1 artifacts predate fault accounting; they were by
        // definition clean runs, so zero defaults are exact, not a guess.
        let mut faults = FaultsSection::default();
        if let Some(f) = obj.get("faults") {
            let fu = |k: &str| -> Result<u64, String> {
                f.get(k)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("faults.{k} missing or not an integer"))
            };
            faults.injected = fu("injected")?;
            faults.retried = fu("retried")?;
            faults.fell_back_packets = fu("fell_back_packets")?;
            faults.dropped_packets = fu("dropped_packets")?;
            faults.panics_contained = fu("panics_contained")?;
            if let Some(spans) = f.get("quarantines").and_then(Value::as_arr) {
                for q in spans {
                    faults.quarantines.push(QuarantineSpan {
                        start_ns: q
                            .get("start_ns")
                            .and_then(Value::as_u64)
                            .ok_or("quarantine span missing start_ns")?,
                        end_ns: match q.get("end_ns") {
                            Some(Value::Null) | None => None,
                            Some(v) => {
                                Some(v.as_u64().ok_or("quarantine end_ns is not an integer")?)
                            }
                        },
                    });
                }
            }
        } else if schema_version >= 2 {
            return Err("missing field 'faults' (required from schema_version 2)".to_string());
        }
        // Scaling is optional at every version: sweeps write it, single
        // runs don't, and pre-v3 artifacts never have it.
        let mut scaling = None;
        if let Some(sc) = obj.get("scaling") {
            let runtime = sc
                .get("runtime")
                .and_then(Value::as_str)
                .ok_or("scaling.runtime missing or not a string")?
                .to_string();
            let mut series = Vec::new();
            for p in sc
                .get("series")
                .and_then(Value::as_arr)
                .ok_or("scaling.series missing or not an array")?
            {
                series.push(ScalePoint {
                    workers: p
                        .get("workers")
                        .and_then(Value::as_u64)
                        .ok_or("scaling point missing workers")?,
                    tx_mpps: p
                        .get("tx_mpps")
                        .and_then(Value::as_f64)
                        .ok_or("scaling point missing tx_mpps")?,
                    tx_gbps: p
                        .get("tx_gbps")
                        .and_then(Value::as_f64)
                        .ok_or("scaling point missing tx_gbps")?,
                });
            }
            scaling = Some(ScalingSection { runtime, series });
        }
        // The audit sections are optional at every version: audited runs
        // write them, plain runs and pre-v4 artifacts don't.
        let mut offload_stages = None;
        if let Some(st) = obj.get("offload_stages") {
            let tasks = st
                .get("tasks")
                .and_then(Value::as_u64)
                .ok_or("offload_stages.tasks missing or not an integer")?;
            let mut stages = Vec::new();
            for r in st
                .get("stages")
                .and_then(Value::as_arr)
                .ok_or("offload_stages.stages missing or not an array")?
            {
                stages.push(StageRow {
                    stage: r
                        .get("stage")
                        .and_then(Value::as_str)
                        .ok_or("stage row missing name")?
                        .to_string(),
                    mean_ns: r
                        .get("mean_ns")
                        .and_then(Value::as_f64)
                        .ok_or("stage row missing mean_ns")?,
                    p99_ns: r
                        .get("p99_ns")
                        .and_then(Value::as_u64)
                        .ok_or("stage row missing p99_ns")?,
                    total_ns: r
                        .get("total_ns")
                        .and_then(Value::as_u64)
                        .ok_or("stage row missing total_ns")?,
                });
            }
            offload_stages = Some(OffloadStagesSection { tasks, stages });
        }
        let mut drift = None;
        if let Some(d) = obj.get("drift") {
            drift = Some(DriftSection {
                tasks: d
                    .get("tasks")
                    .and_then(Value::as_u64)
                    .ok_or("drift.tasks missing or not an integer")?,
                rel_err: d
                    .get("rel_err")
                    .and_then(Value::as_f64)
                    .ok_or("drift.rel_err missing or not a number")?,
                events: d
                    .get("events")
                    .and_then(Value::as_u64)
                    .ok_or("drift.events missing or not an integer")?,
                worst_stage: match d.get("worst_stage") {
                    Some(Value::Null) | None => None,
                    Some(v) => Some(
                        v.as_str()
                            .ok_or("drift.worst_stage is not a string")?
                            .to_string(),
                    ),
                },
                worst_excess_ns: d
                    .get("worst_excess_ns")
                    .and_then(Value::as_f64)
                    .ok_or("drift.worst_excess_ns missing or not a number")?,
            });
        }
        let mut slo = None;
        if let Some(sl) = obj.get("slo") {
            let su = |k: &str| -> Result<u64, String> {
                sl.get(k)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("slo.{k} missing or not an integer"))
            };
            let sf = |k: &str| -> Result<f64, String> {
                sl.get(k)
                    .and_then(Value::as_f64)
                    .ok_or_else(|| format!("slo.{k} missing or not a number"))
            };
            slo = Some(SloSection {
                latency_ns: match sl.get("latency_ns") {
                    Some(Value::Null) | None => None,
                    Some(v) => Some(v.as_u64().ok_or("slo.latency_ns is not an integer")?),
                },
                min_mpps: match sl.get("min_mpps") {
                    Some(Value::Null) | None => None,
                    Some(v) => Some(v.as_f64().ok_or("slo.min_mpps is not a number")?),
                },
                error_budget: sf("error_budget")?,
                windows: su("windows")?,
                latency_violations: su("latency_violations")?,
                throughput_violations: su("throughput_violations")?,
                latency_burn: sf("latency_burn")?,
                throughput_burn: sf("throughput_burn")?,
                met: matches!(sl.get("met"), Some(Value::Bool(true))),
            });
        }
        let mut flows = None;
        if let Some(fl) = obj.get("flows") {
            let flu = |k: &str| -> Result<u64, String> {
                fl.get(k)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("flows.{k} missing or not an integer"))
            };
            flows = Some(FlowsSection {
                live: flu("live")?,
                inserts: flu("inserts")?,
                hits: flu("hits")?,
                misses: flu("misses")?,
                evict_idle: flu("evict_idle")?,
                evict_embryonic: flu("evict_embryonic")?,
                evict_closed: flu("evict_closed")?,
                evict_death: flu("evict_death")?,
                migrated_in: flu("migrated_in")?,
                table_full_drops: flu("table_full_drops")?,
                out_of_state_drops: flu("out_of_state_drops")?,
                nat_ports_in_use: flu("nat_ports_in_use")?,
            });
        }
        let mut elements = Vec::new();
        for e in need("elements")?
            .as_arr()
            .ok_or("elements is not an array")?
        {
            let eu = |k: &str| -> Result<u64, String> {
                e.get(k)
                    .and_then(Value::as_u64)
                    .ok_or_else(|| format!("element field '{k}' missing or not an integer"))
            };
            elements.push(ElementReport {
                node: eu("node")?,
                element: e
                    .get("element")
                    .and_then(Value::as_str)
                    .ok_or("element missing name")?
                    .to_string(),
                batches: eu("batches")?,
                packets: eu("packets")?,
                drops: eu("drops")?,
                busy_ns: eu("busy_ns")?,
                p50_ns: eu("p50_ns")?,
                p99_ns: eu("p99_ns")?,
            });
        }
        Ok(BenchReport {
            schema_version,
            app: str_of("app")?,
            git_sha: str_of("git_sha")?,
            rustc: str_of("rustc")?,
            config_digest: str_of("config_digest")?,
            quick: matches!(need("quick")?, Value::Bool(true)),
            duration_ns: u64_of("duration_ns")?,
            offered_gbps: f64_of("offered_gbps")?,
            tx_gbps: f64_of("tx_gbps")?,
            tx_mpps: f64_of("tx_mpps")?,
            rx_dropped: u64_of("rx_dropped")?,
            latency: LatencySummary {
                p50_ns: lat_u64("p50_ns")?,
                p90_ns: lat_u64("p90_ns")?,
                p99_ns: lat_u64("p99_ns")?,
                p999_ns: lat_u64("p999_ns")?,
                mean_ns: lat_u64("mean_ns")?,
                max_ns: lat_u64("max_ns")?,
                count: lat_u64("count")?,
            },
            balancer: BalancerReport {
                final_w,
                settle_ns,
                trajectory,
            },
            faults,
            elements,
            scaling,
            offload_stages,
            drift,
            slo,
            flows,
        })
    }
}

// ---------------------------------------------------------------------------
// The regression gate.
// ---------------------------------------------------------------------------

/// Per-metric tolerances for [`compare`]. All gates are one-sided:
/// improvements never fail.
#[derive(Debug, Clone, Copy)]
pub struct Tolerances {
    /// Relative throughput loss allowed (0.10 = current may be up to 10 %
    /// below baseline).
    pub throughput_rel: f64,
    /// Relative latency growth allowed.
    pub latency_rel: f64,
    /// Absolute latency slack, nanoseconds — added on top of the relative
    /// bound so tiny baselines don't gate on noise.
    pub latency_abs_ns: u64,
    /// Absolute drift allowed in the balancer's final `w` (two-sided: a
    /// large move either way means the operating point changed).
    pub w_abs: f64,
}

impl Default for Tolerances {
    fn default() -> Tolerances {
        Tolerances {
            throughput_rel: 0.10,
            latency_rel: 0.30,
            latency_abs_ns: 2_000,
            w_abs: 0.15,
        }
    }
}

/// Verdict of one compared metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within tolerance (or improved).
    Ok,
    /// Out of tolerance.
    Regressed,
    /// Reported for context, never gates.
    Info,
}

impl Verdict {
    fn as_str(&self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Regressed => "REGRESSED",
            Verdict::Info => "info",
        }
    }
}

/// One row of the comparison verdict table.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Metric name.
    pub metric: String,
    /// Baseline value, rendered.
    pub baseline: String,
    /// Current value, rendered.
    pub current: String,
    /// Change, rendered (signed percent or absolute).
    pub delta: String,
    /// Allowed change, rendered.
    pub allowed: String,
    /// Outcome.
    pub verdict: Verdict,
}

/// Result of diffing two reports.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Per-metric rows, gating metrics first.
    pub rows: Vec<CompareRow>,
    /// Non-gating observations (config digest drift, element set changes).
    pub warnings: Vec<String>,
}

impl Comparison {
    /// True when any gated metric regressed.
    pub fn regressed(&self) -> bool {
        self.rows.iter().any(|r| r.verdict == Verdict::Regressed)
    }

    /// Renders the verdict table plus warnings.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "metric", "baseline", "current", "delta", "allowed", "verdict",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.metric.clone(),
                r.baseline.clone(),
                r.current.clone(),
                r.delta.clone(),
                r.allowed.clone(),
                r.verdict.as_str().to_string(),
            ]);
        }
        let mut out = t.render();
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        out.push_str(if self.regressed() {
            "verdict: REGRESSED\n"
        } else {
            "verdict: ok\n"
        });
        out
    }
}

fn rel_delta(base: f64, cur: f64) -> String {
    if base == 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.1}%", (cur - base) / base * 100.0)
}

/// "Higher is better" gate (throughput).
fn gate_floor(rows: &mut Vec<CompareRow>, metric: &str, base: f64, cur: f64, rel: f64) {
    let floor = base * (1.0 - rel);
    rows.push(CompareRow {
        metric: metric.to_string(),
        baseline: format!("{base:.3}"),
        current: format!("{cur:.3}"),
        delta: rel_delta(base, cur),
        allowed: format!("≥ {floor:.3}"),
        verdict: if cur >= floor {
            Verdict::Ok
        } else {
            Verdict::Regressed
        },
    });
}

/// "Lower is better" gate (latency), with absolute slack.
fn gate_ceiling_ns(rows: &mut Vec<CompareRow>, metric: &str, base: u64, cur: u64, t: &Tolerances) {
    let ceil = (base as f64 * (1.0 + t.latency_rel)) + t.latency_abs_ns as f64;
    rows.push(CompareRow {
        metric: metric.to_string(),
        baseline: format!("{base}ns"),
        current: format!("{cur}ns"),
        delta: rel_delta(base as f64, cur as f64),
        allowed: format!("≤ {}ns", ceil as u64),
        verdict: if (cur as f64) <= ceil {
            Verdict::Ok
        } else {
            Verdict::Regressed
        },
    });
}

/// Diffs `cur` against `base` under `tol`, producing the verdict table.
///
/// Gated: `tx_gbps`, `tx_mpps` (floor), end-to-end `p50/p99/p999` latency
/// (ceiling), and the balancer's `final_w` (absolute band). Context-only:
/// RX drops, settle time, per-element counts. App mismatch is itself a
/// regression — the diff would be meaningless.
pub fn compare(base: &BenchReport, cur: &BenchReport, tol: &Tolerances) -> Comparison {
    let mut c = Comparison::default();
    if base.app != cur.app {
        c.rows.push(CompareRow {
            metric: "app".to_string(),
            baseline: base.app.clone(),
            current: cur.app.clone(),
            delta: "-".to_string(),
            allowed: "equal".to_string(),
            verdict: Verdict::Regressed,
        });
        return c;
    }
    if base.config_digest != cur.config_digest {
        c.warnings.push(format!(
            "config digest changed ({} -> {}): reports describe different experiment setups",
            base.config_digest, cur.config_digest
        ));
    }
    if base.quick != cur.quick {
        c.warnings.push(format!(
            "quick-mode mismatch (baseline quick={}, current quick={})",
            base.quick, cur.quick
        ));
    }

    gate_floor(
        &mut c.rows,
        "tx_gbps",
        base.tx_gbps,
        cur.tx_gbps,
        tol.throughput_rel,
    );
    gate_floor(
        &mut c.rows,
        "tx_mpps",
        base.tx_mpps,
        cur.tx_mpps,
        tol.throughput_rel,
    );
    gate_ceiling_ns(
        &mut c.rows,
        "latency_p50",
        base.latency.p50_ns,
        cur.latency.p50_ns,
        tol,
    );
    gate_ceiling_ns(
        &mut c.rows,
        "latency_p99",
        base.latency.p99_ns,
        cur.latency.p99_ns,
        tol,
    );
    gate_ceiling_ns(
        &mut c.rows,
        "latency_p999",
        base.latency.p999_ns,
        cur.latency.p999_ns,
        tol,
    );
    let dw = (cur.balancer.final_w - base.balancer.final_w).abs();
    c.rows.push(CompareRow {
        metric: "final_w".to_string(),
        baseline: format!("{:.3}", base.balancer.final_w),
        current: format!("{:.3}", cur.balancer.final_w),
        delta: format!("{:+.3}", cur.balancer.final_w - base.balancer.final_w),
        allowed: format!("±{:.3}", tol.w_abs),
        verdict: if dw <= tol.w_abs {
            Verdict::Ok
        } else {
            Verdict::Regressed
        },
    });

    // Fault hygiene: against a clean baseline (the normal CI case) any
    // injected fault, contained panic, or fault-dropped packet is a
    // regression. When the baseline itself ran a fault drill the counts
    // are experiment parameters, so they only inform.
    let fault_gate = |rows: &mut Vec<CompareRow>, metric: &str, base_v: u64, cur_v: u64| {
        let gates = base_v == 0;
        rows.push(CompareRow {
            metric: metric.to_string(),
            baseline: base_v.to_string(),
            current: cur_v.to_string(),
            delta: format!("{:+}", cur_v as i128 - base_v as i128),
            allowed: if gates {
                "0".to_string()
            } else {
                "-".to_string()
            },
            verdict: if !gates {
                Verdict::Info
            } else if cur_v == 0 {
                Verdict::Ok
            } else {
                Verdict::Regressed
            },
        });
    };
    fault_gate(
        &mut c.rows,
        "faults_injected",
        base.faults.injected,
        cur.faults.injected,
    );
    fault_gate(
        &mut c.rows,
        "fault_dropped_pkts",
        base.faults.dropped_packets,
        cur.faults.dropped_packets,
    );
    fault_gate(
        &mut c.rows,
        "panics_contained",
        base.faults.panics_contained,
        cur.faults.panics_contained,
    );

    // Scaling sweep: gate each worker count's throughput against the
    // same worker count in the baseline (floor, like the headline
    // metrics). Points only one side has are reported as warnings — the
    // sweeps describe different experiments.
    match (&base.scaling, &cur.scaling) {
        (Some(b), Some(cu)) => {
            if b.runtime != cu.runtime {
                c.warnings.push(format!(
                    "scaling runtime changed ({} -> {})",
                    b.runtime, cu.runtime
                ));
            }
            for bp in &b.series {
                match cu.series.iter().find(|p| p.workers == bp.workers) {
                    Some(cp) => gate_floor(
                        &mut c.rows,
                        &format!("scale_w{}_mpps", bp.workers),
                        bp.tx_mpps,
                        cp.tx_mpps,
                        tol.throughput_rel,
                    ),
                    None => c.warnings.push(format!(
                        "scaling point workers={} missing from current report",
                        bp.workers
                    )),
                }
            }
            for cp in &cu.series {
                if !b.series.iter().any(|p| p.workers == cp.workers) {
                    c.warnings.push(format!(
                        "scaling point workers={} has no baseline",
                        cp.workers
                    ));
                }
            }
        }
        (Some(_), None) => c
            .warnings
            .push("baseline has a scaling sweep but current report does not".to_string()),
        (None, Some(_)) => c
            .warnings
            .push("current report has a scaling sweep but baseline does not".to_string()),
        (None, None) => {}
    }

    // Stateful flow plane: live-flow occupancy is a capacity claim, so it
    // gates like throughput (floor). The hygiene counters gate like fault
    // counters: against a clean baseline (zero), any table-full drop,
    // death eviction, or out-of-state drop is a regression; when the
    // baseline itself had them they were experiment parameters and only
    // inform. Everything else is context.
    match (&base.flows, &cur.flows) {
        (Some(b), Some(cu)) => {
            gate_floor(
                &mut c.rows,
                "flows_live",
                b.live as f64,
                cu.live as f64,
                tol.throughput_rel,
            );
            fault_gate(
                &mut c.rows,
                "flow_table_full_drops",
                b.table_full_drops,
                cu.table_full_drops,
            );
            fault_gate(
                &mut c.rows,
                "flow_evict_death",
                b.evict_death,
                cu.evict_death,
            );
            fault_gate(
                &mut c.rows,
                "flow_out_of_state_drops",
                b.out_of_state_drops,
                cu.out_of_state_drops,
            );
            for (metric, bv, cv) in [
                ("flow_inserts", b.inserts, cu.inserts),
                ("flow_evictions", b.evictions_total(), cu.evictions_total()),
                ("flow_migrated_in", b.migrated_in, cu.migrated_in),
                ("nat_ports_in_use", b.nat_ports_in_use, cu.nat_ports_in_use),
            ] {
                c.rows.push(CompareRow {
                    metric: metric.to_string(),
                    baseline: bv.to_string(),
                    current: cv.to_string(),
                    delta: format!("{:+}", cv as i128 - bv as i128),
                    allowed: "-".to_string(),
                    verdict: Verdict::Info,
                });
            }
        }
        (Some(_), None) => c
            .warnings
            .push("baseline has a flows section but current report does not".to_string()),
        (None, Some(_)) => c
            .warnings
            .push("current report has a flows section but baseline does not".to_string()),
        (None, None) => {}
    }

    // Audit-plane context: SLO burn rates and drift events inform but
    // never gate — they describe budgets and model fit, not regressions
    // the throughput/latency gates wouldn't already catch.
    let opt_f64 = |v: Option<f64>| match v {
        Some(x) => format!("{x:.3}"),
        None => "-".to_string(),
    };
    if base.slo.is_some() || cur.slo.is_some() {
        for (metric, bv, cv) in [
            (
                "slo_latency_burn",
                base.slo.as_ref().map(|s| s.latency_burn),
                cur.slo.as_ref().map(|s| s.latency_burn),
            ),
            (
                "slo_throughput_burn",
                base.slo.as_ref().map(|s| s.throughput_burn),
                cur.slo.as_ref().map(|s| s.throughput_burn),
            ),
        ] {
            c.rows.push(CompareRow {
                metric: metric.to_string(),
                baseline: opt_f64(bv),
                current: opt_f64(cv),
                delta: "-".to_string(),
                allowed: "-".to_string(),
                verdict: Verdict::Info,
            });
        }
    }
    if base.drift.is_some() || cur.drift.is_some() {
        let fmt = |d: Option<&DriftSection>| match d {
            Some(d) => format!("{} (err {:.3})", d.events, d.rel_err),
            None => "-".to_string(),
        };
        c.rows.push(CompareRow {
            metric: "drift_events".to_string(),
            baseline: fmt(base.drift.as_ref()),
            current: fmt(cur.drift.as_ref()),
            delta: "-".to_string(),
            allowed: "-".to_string(),
            verdict: Verdict::Info,
        });
    }

    // Context rows: never gate.
    c.rows.push(CompareRow {
        metric: "rx_dropped".to_string(),
        baseline: base.rx_dropped.to_string(),
        current: cur.rx_dropped.to_string(),
        delta: format!("{:+}", cur.rx_dropped as i128 - base.rx_dropped as i128),
        allowed: "-".to_string(),
        verdict: Verdict::Info,
    });
    let fmt_settle = |s: Option<u64>| match s {
        Some(ns) => format!("{ns}ns"),
        None => "never".to_string(),
    };
    c.rows.push(CompareRow {
        metric: "settle".to_string(),
        baseline: fmt_settle(base.balancer.settle_ns),
        current: fmt_settle(cur.balancer.settle_ns),
        delta: "-".to_string(),
        allowed: "-".to_string(),
        verdict: Verdict::Info,
    });
    if base.elements.len() != cur.elements.len() {
        c.warnings.push(format!(
            "element count changed ({} -> {})",
            base.elements.len(),
            cur.elements.len()
        ));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            app: "ipv4".to_string(),
            git_sha: "deadbeef".to_string(),
            rustc: "rustc 1.0 \"quoted\"".to_string(),
            config_digest: "00ff".to_string(),
            quick: true,
            duration_ns: 28_000_000,
            offered_gbps: 80.0,
            tx_gbps: 41.5,
            tx_mpps: 61.75,
            rx_dropped: 12,
            latency: LatencySummary {
                p50_ns: 40_000,
                p90_ns: 55_000,
                p99_ns: 70_000,
                p999_ns: 90_000,
                mean_ns: 42_000,
                max_ns: 120_000,
                count: 1_000_000,
            },
            balancer: BalancerReport {
                final_w: 0.62,
                settle_ns: Some(30_000_000),
                trajectory: vec![
                    WPoint {
                        t_ns: 1_000,
                        w: 0.5,
                    },
                    WPoint {
                        t_ns: 2_000,
                        w: 0.62,
                    },
                ],
            },
            faults: FaultsSection::default(),
            elements: vec![ElementReport {
                node: 0,
                element: "IPLookup".to_string(),
                batches: 10,
                packets: 640,
                drops: 0,
                busy_ns: 5_000,
                p50_ns: 480,
                p99_ns: 900,
            }],
            scaling: None,
            offload_stages: None,
            drift: None,
            slo: None,
            flows: None,
        }
    }

    #[test]
    fn json_round_trip() {
        let mut r = sample();
        r.faults = FaultsSection {
            injected: 9,
            retried: 4,
            fell_back_packets: 512,
            dropped_packets: 64,
            panics_contained: 1,
            quarantines: vec![
                QuarantineSpan {
                    start_ns: 10_000_000,
                    end_ns: Some(14_000_000),
                },
                QuarantineSpan {
                    start_ns: 20_000_000,
                    end_ns: None,
                },
            ],
        };
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn json_round_trip_with_scaling() {
        let r = sample().with_scaling(
            "des",
            vec![
                ScalePoint {
                    workers: 4,
                    tx_mpps: 30.0,
                    tx_gbps: 15.4,
                },
                ScalePoint {
                    workers: 1,
                    tx_mpps: 8.0,
                    tx_gbps: 4.1,
                },
            ],
        );
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // with_scaling sorts by worker count.
        let series = &parsed.scaling.as_ref().unwrap().series;
        assert_eq!(series[0].workers, 1);
        assert_eq!(series[1].workers, 4);
    }

    #[test]
    fn json_round_trip_with_audit_sections() {
        let mut r = sample();
        r.offload_stages = Some(OffloadStagesSection {
            tasks: 42,
            stages: vec![
                StageRow {
                    stage: "gather".to_string(),
                    mean_ns: 1500.0,
                    p99_ns: 2100,
                    total_ns: 63_000,
                },
                StageRow {
                    stage: "compute".to_string(),
                    mean_ns: 20_000.5,
                    p99_ns: 31_000,
                    total_ns: 840_021,
                },
            ],
        });
        r.drift = Some(DriftSection {
            tasks: 42,
            rel_err: 0.75,
            events: 1,
            worst_stage: Some("launch".to_string()),
            worst_excess_ns: 1_000_000.0,
        });
        r.slo = Some(SloSection {
            latency_ns: Some(500_000),
            min_mpps: None,
            error_budget: 0.05,
            windows: 25,
            latency_violations: 3,
            throughput_violations: 0,
            latency_burn: 2.4,
            throughput_burn: 0.0,
            met: false,
        });
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // The audit context rows show up in a comparison but never gate.
        let c = compare(&r, &r, &Tolerances::default());
        assert!(!c.regressed(), "{}", c.render());
        let rendered = c.render();
        assert!(rendered.contains("slo_latency_burn"), "{rendered}");
        assert!(rendered.contains("drift_events"), "{rendered}");
    }

    fn sample_flows() -> FlowsSection {
        FlowsSection {
            live: 4096,
            inserts: 4096,
            hits: 1_000_000,
            misses: 4096,
            evict_idle: 0,
            evict_embryonic: 0,
            evict_closed: 0,
            evict_death: 0,
            migrated_in: 0,
            table_full_drops: 0,
            out_of_state_drops: 0,
            nat_ports_in_use: 4096,
        }
    }

    #[test]
    fn json_round_trip_with_flows() {
        let mut r = sample();
        r.flows = Some(sample_flows());
        let parsed = BenchReport::parse(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
        // The flow rows show up in a comparison of identical reports
        // without gating.
        let c = compare(&r, &r, &Tolerances::default());
        assert!(!c.regressed(), "{}", c.render());
        assert!(c.render().contains("flows_live"), "{}", c.render());
    }

    #[test]
    fn flow_occupancy_cliff_fails() {
        let mut base = sample();
        base.flows = Some(sample_flows());
        let mut cur = base.clone();
        // Losing a quarter of the live flows is past the 10 % floor.
        cur.flows.as_mut().unwrap().live = 3072;
        let c = compare(&base, &cur, &Tolerances::default());
        assert!(c.regressed(), "{}", c.render());
    }

    #[test]
    fn flow_hygiene_against_clean_baseline_regresses() {
        let mut base = sample();
        base.flows = Some(sample_flows());
        for tweak in [
            |f: &mut FlowsSection| f.table_full_drops = 1,
            |f: &mut FlowsSection| f.evict_death = 7,
            |f: &mut FlowsSection| f.out_of_state_drops = 3,
        ] {
            let mut cur = base.clone();
            tweak(cur.flows.as_mut().unwrap());
            let c = compare(&base, &cur, &Tolerances::default());
            assert!(c.regressed(), "{}", c.render());
        }
        // A baseline that itself ran a kill drill makes the counts
        // informational, like the fault counters.
        let mut drilled = base.clone();
        drilled.flows.as_mut().unwrap().evict_death = 100;
        let mut cur = drilled.clone();
        cur.flows.as_mut().unwrap().evict_death = 250;
        let c = compare(&drilled, &cur, &Tolerances::default());
        assert!(!c.regressed(), "{}", c.render());
    }

    #[test]
    fn missing_flows_section_only_warns() {
        let mut base = sample();
        base.flows = Some(sample_flows());
        let cur = sample();
        let c = compare(&base, &cur, &Tolerances::default());
        assert!(!c.regressed(), "{}", c.render());
        assert!(!c.warnings.is_empty());
    }

    #[test]
    fn scaling_point_cliff_fails() {
        let pts = |m1: f64, m4: f64| {
            vec![
                ScalePoint {
                    workers: 1,
                    tx_mpps: m1,
                    tx_gbps: m1 / 2.0,
                },
                ScalePoint {
                    workers: 4,
                    tx_mpps: m4,
                    tx_gbps: m4 / 2.0,
                },
            ]
        };
        let base = sample().with_scaling("des", pts(8.0, 30.0));
        // One worker count regressing is enough to gate.
        let cur = sample().with_scaling("des", pts(8.0, 20.0));
        let c = compare(&base, &cur, &Tolerances::default());
        assert!(c.regressed(), "{}", c.render());
        // Within tolerance passes; missing points only warn.
        let ok = sample().with_scaling("des", pts(7.8, 29.0));
        assert!(!compare(&base, &ok, &Tolerances::default()).regressed());
        let fewer = sample().with_scaling(
            "des",
            vec![ScalePoint {
                workers: 1,
                tx_mpps: 8.0,
                tx_gbps: 4.0,
            }],
        );
        let c = compare(&base, &fewer, &Tolerances::default());
        assert!(!c.regressed());
        assert!(!c.warnings.is_empty());
    }

    #[test]
    fn parse_rejects_wrong_schema_version() {
        let text = sample().to_json().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 999",
        );
        assert!(BenchReport::parse(&text)
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn parse_accepts_v1_artifacts_with_zero_fault_defaults() {
        // A version-1 artifact: no `faults` section at all.
        let mut text = sample().to_json().replace(
            &format!("\"schema_version\": {SCHEMA_VERSION}"),
            "\"schema_version\": 1",
        );
        let start = text.find("  \"faults\": {").unwrap();
        let end = text[start..].find("},\n").unwrap() + start + 3;
        text.replace_range(start..end, "");
        let parsed = BenchReport::parse(&text).unwrap();
        assert_eq!(parsed.schema_version, 1);
        assert_eq!(parsed.faults, FaultsSection::default());
    }

    #[test]
    fn faults_against_clean_baseline_regress() {
        let base = sample();
        let mut cur = base.clone();
        cur.faults.injected = 3;
        cur.faults.dropped_packets = 128;
        let c = compare(&base, &cur, &Tolerances::default());
        assert!(c.regressed(), "{}", c.render());
    }

    #[test]
    fn faulty_baseline_makes_fault_counts_informational() {
        let mut base = sample();
        base.faults.injected = 100;
        base.faults.dropped_packets = 5;
        let mut cur = base.clone();
        cur.faults.injected = 250;
        cur.faults.dropped_packets = 12;
        let c = compare(&base, &cur, &Tolerances::default());
        assert!(!c.regressed(), "{}", c.render());
    }

    #[test]
    fn identical_reports_pass() {
        let r = sample();
        let c = compare(&r, &r, &Tolerances::default());
        assert!(!c.regressed(), "{}", c.render());
    }

    #[test]
    fn throughput_cliff_fails() {
        let base = sample();
        let mut cur = base.clone();
        cur.tx_gbps *= 0.5;
        let c = compare(&base, &cur, &Tolerances::default());
        assert!(c.regressed());
        assert!(c.render().contains("REGRESSED"));
    }

    #[test]
    fn improvement_never_fails() {
        let base = sample();
        let mut cur = base.clone();
        cur.tx_gbps *= 2.0;
        cur.latency.p50_ns /= 4;
        cur.latency.p99_ns /= 4;
        cur.latency.p999_ns /= 4;
        let c = compare(&base, &cur, &Tolerances::default());
        assert!(!c.regressed(), "{}", c.render());
    }

    #[test]
    fn latency_regression_fails_beyond_rel_plus_abs() {
        let base = sample();
        let mut cur = base.clone();
        cur.latency.p99_ns = (base.latency.p99_ns as f64 * 1.6) as u64;
        let c = compare(&base, &cur, &Tolerances::default());
        assert!(c.regressed());
    }

    #[test]
    fn tiny_latency_noise_is_absorbed_by_abs_slack() {
        let mut base = sample();
        base.latency.p50_ns = 100;
        base.latency.p99_ns = 200;
        base.latency.p999_ns = 300;
        let mut cur = base.clone();
        cur.latency.p50_ns = 900; // 9x, but within the 2000 ns slack
        let c = compare(&base, &cur, &Tolerances::default());
        assert!(!c.regressed(), "{}", c.render());
    }

    #[test]
    fn app_mismatch_is_a_regression() {
        let base = sample();
        let mut cur = base.clone();
        cur.app = "ids".to_string();
        assert!(compare(&base, &cur, &Tolerances::default()).regressed());
    }

    #[test]
    fn settle_time_requires_staying_in_band() {
        use nba_sim::Time;
        let mk = |t_ms: u64, w: f64| TimeSample {
            t: Time::from_ms(t_ms),
            tx_packets: 0,
            tx_mpps: 0.0,
            tx_gbps: 0.0,
            dropped: 0,
            rx_dropped: 0,
            latency_ewma_ns: 0,
            offloaded_batches: 0,
            offload_fraction: w,
            gpu_busy: Vec::new(),
            shards: Vec::new(),
            slo: None,
        };
        // Enters the band at 2 ms, leaves, re-enters for good at 4 ms.
        let samples = vec![mk(1, 0.2), mk(2, 0.61), mk(3, 0.4), mk(4, 0.6), mk(5, 0.62)];
        assert_eq!(
            settle_time_ns(&samples, 0.62),
            Some(Time::from_ms(4).as_ns())
        );
        // Never settles.
        assert_eq!(settle_time_ns(&[mk(1, 0.0)], 0.62), None);
        assert_eq!(settle_time_ns(&[], 0.62), None);
    }
}
