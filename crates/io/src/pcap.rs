//! Pcap trace capture and replay.
//!
//! The paper's Figure 2/13 workloads replay a CAIDA 2013 trace. This module
//! provides the equivalent plumbing: classic libpcap-format files
//! (microsecond resolution, magic `0xa1b2c3d4`) written by the traffic
//! generators and replayed as a [`PacketSource`] at a configurable rate.

use std::io::{self, Read, Write};

use nba_sim::Time;

use crate::buf::{Mempool, DEFAULT_HEADROOM};
use crate::packet::{Packet, WIRE_OVERHEAD_BYTES};

/// Anything that can emit timestamped packets into the runtime.
///
/// Implemented by the synthetic [`crate::gen::TrafficGen`] and by
/// [`Replay`]; the discrete-event runtime drives either.
pub trait PacketSource {
    /// Emits every packet due strictly before `until` into `sink`, pacing
    /// `ts_gen` timestamps accordingly. Returns the number emitted.
    fn generate(&mut self, until: Time, pool: &Mempool, sink: &mut dyn FnMut(Packet)) -> u64;
}

impl PacketSource for crate::gen::TrafficGen {
    fn generate(&mut self, until: Time, pool: &Mempool, sink: &mut dyn FnMut(Packet)) -> u64 {
        crate::gen::TrafficGen::generate(self, until, pool, sink)
    }
}

/// Classic pcap global-header magic (microsecond timestamps, native order).
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// `LINKTYPE_ETHERNET`.
const LINKTYPE_ETHERNET: u32 = 1;

/// One record of a loaded trace.
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Capture timestamp.
    pub ts: Time,
    /// Frame bytes.
    pub frame: Vec<u8>,
}

/// Writes a classic pcap file.
pub struct PcapWriter<W: Write> {
    out: W,
    records: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Creates a writer and emits the global header.
    pub fn new(mut out: W) -> io::Result<PcapWriter<W>> {
        out.write_all(&PCAP_MAGIC.to_le_bytes())?;
        out.write_all(&2u16.to_le_bytes())?; // Version major.
        out.write_all(&4u16.to_le_bytes())?; // Version minor.
        out.write_all(&0i32.to_le_bytes())?; // Timezone offset.
        out.write_all(&0u32.to_le_bytes())?; // Timestamp accuracy.
        out.write_all(&65535u32.to_le_bytes())?; // Snap length.
        out.write_all(&LINKTYPE_ETHERNET.to_le_bytes())?;
        Ok(PcapWriter { out, records: 0 })
    }

    /// Appends one frame with the given capture timestamp.
    pub fn write(&mut self, ts: Time, frame: &[u8]) -> io::Result<()> {
        let us = ts.as_us();
        self.out
            .write_all(&((us / 1_000_000) as u32).to_le_bytes())?;
        self.out
            .write_all(&((us % 1_000_000) as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.out.write_all(frame)?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }
}

/// Reads an entire classic pcap file into memory.
///
/// Rejects nanosecond-resolution and byte-swapped variants (the writer
/// above never produces them).
pub fn read_pcap<R: Read>(mut input: R) -> io::Result<Vec<TraceRecord>> {
    let mut hdr = [0u8; 24];
    input.read_exact(&mut hdr)?;
    let magic = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
    if magic != PCAP_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported pcap magic {magic:#010x}"),
        ));
    }
    let linktype = u32::from_le_bytes(hdr[20..24].try_into().unwrap());
    if linktype != LINKTYPE_ETHERNET {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported link type {linktype}"),
        ));
    }
    let mut records = Vec::new();
    loop {
        let mut rec = [0u8; 16];
        match input.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e),
        }
        let sec = u64::from(u32::from_le_bytes(rec[0..4].try_into().unwrap()));
        let usec = u64::from(u32::from_le_bytes(rec[4..8].try_into().unwrap()));
        let caplen = u32::from_le_bytes(rec[8..12].try_into().unwrap()) as usize;
        if caplen > 65_535 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "corrupt record length",
            ));
        }
        let mut frame = vec![0u8; caplen];
        input.read_exact(&mut frame)?;
        records.push(TraceRecord {
            ts: Time::from_us(sec * 1_000_000 + usec),
            frame,
        });
    }
    Ok(records)
}

/// Replays a loaded trace as a [`PacketSource`].
///
/// Original inter-arrival gaps are ignored; the replay is re-paced to the
/// configured offered wire rate (how trace replay machines drive DUTs),
/// looping the trace as long as the runtime asks for packets.
pub struct Replay {
    records: Vec<TraceRecord>,
    offered_gbps: f64,
    next_ts: Time,
    idx: usize,
    emitted: u64,
}

impl Replay {
    /// Creates a replay source at `offered_gbps` (wire rate).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or the rate is not positive.
    pub fn new(records: Vec<TraceRecord>, offered_gbps: f64) -> Replay {
        assert!(!records.is_empty(), "cannot replay an empty trace");
        assert!(offered_gbps > 0.0, "offered load must be positive");
        Replay {
            records,
            offered_gbps,
            next_ts: Time::ZERO,
            idx: 0,
            emitted: 0,
        }
    }

    /// Total packets emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl PacketSource for Replay {
    fn generate(&mut self, until: Time, pool: &Mempool, sink: &mut dyn FnMut(Packet)) -> u64 {
        let mut n = 0;
        while self.next_ts < until {
            let rec = &self.records[self.idx];
            self.idx = (self.idx + 1) % self.records.len();
            let ts = self.next_ts;
            let wire_bits = ((rec.frame.len() + WIRE_OVERHEAD_BYTES) * 8) as f64;
            self.next_ts += Time::from_secs_f64(wire_bits / (self.offered_gbps * 1e9));
            let Some(mut buf) = pool.alloc() else {
                continue;
            };
            buf.fill(
                DEFAULT_HEADROOM.min(buf.capacity() - rec.frame.len()),
                &rec.frame,
            );
            let mut pkt = Packet::from_pool(buf, pool.clone());
            pkt.ts_gen = ts;
            self.emitted += 1;
            n += 1;
            sink(pkt);
        }
        n
    }
}

/// Caps any [`PacketSource`] at a fixed packet budget.
///
/// The differential conformance suite runs the same seeded generator under
/// two very different clocks (the DES virtual clock and the live runtime's
/// real time); a budget makes "the first `n` packets" a well-defined
/// workload on both, since generator output depends only on the RNG
/// sequence, never on wall time.
pub struct Limited<S> {
    inner: S,
    remaining: u64,
}

impl<S> Limited<S> {
    /// Wraps `inner`, allowing at most `budget` packets in total.
    pub fn new(inner: S, budget: u64) -> Limited<S> {
        Limited {
            inner,
            remaining: budget,
        }
    }

    /// Packets still allowed.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// True once the budget is spent.
    pub fn exhausted(&self) -> bool {
        self.remaining == 0
    }
}

impl<S: PacketSource> PacketSource for Limited<S> {
    fn generate(&mut self, until: Time, pool: &Mempool, sink: &mut dyn FnMut(Packet)) -> u64 {
        if self.remaining == 0 {
            return 0;
        }
        let mut emitted = 0u64;
        let remaining = &mut self.remaining;
        self.inner.generate(until, pool, &mut |pkt| {
            // Excess packets of the final window are discarded here; their
            // buffers return to the pool on drop.
            if *remaining > 0 {
                *remaining -= 1;
                emitted += 1;
                sink(pkt);
            }
        });
        emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{TrafficConfig, TrafficGen};

    #[test]
    fn write_read_round_trip() {
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf).unwrap();
            w.write(Time::from_us(5), b"frame-one-data").unwrap();
            w.write(Time::from_secs(2), b"x").unwrap();
            assert_eq!(w.records(), 2);
        }
        let recs = read_pcap(&buf[..]).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].ts, Time::from_us(5));
        assert_eq!(recs[0].frame, b"frame-one-data");
        assert_eq!(recs[1].ts, Time::from_secs(2));
        assert_eq!(recs[1].frame, b"x");
    }

    #[test]
    fn rejects_foreign_magic_and_linktype() {
        let mut bad = [0u8; 24];
        bad[0..4].copy_from_slice(&0xdead_beefu32.to_le_bytes());
        assert!(read_pcap(&bad[..]).is_err());

        let mut wrong_link = Vec::new();
        {
            let _ = PcapWriter::new(&mut wrong_link).unwrap();
        }
        wrong_link[20..24].copy_from_slice(&101u32.to_le_bytes());
        assert!(read_pcap(&wrong_link[..]).is_err());
    }

    #[test]
    fn limited_caps_emission_exactly() {
        let pool = Mempool::new(1 << 12);
        let mut capped = Limited::new(TrafficGen::new(TrafficConfig::default()), 100);
        let mut got = 0u64;
        // Far more than 100 packets' worth of virtual time.
        let n = capped.generate(Time::from_ms(10), &pool, &mut |_p| got += 1);
        assert_eq!(n, 100);
        assert_eq!(got, 100);
        assert!(capped.exhausted());
        assert_eq!(
            capped.generate(Time::from_ms(20), &pool, &mut |_p| got += 1),
            0
        );
        assert_eq!(got, 100);
    }

    #[test]
    fn limited_prefix_matches_unlimited_run() {
        let pool = Mempool::new(1 << 12);
        let mut full = TrafficGen::new(TrafficConfig::default());
        let mut frames = Vec::new();
        full.generate(Time::from_ms(1), &pool, &mut |p| {
            frames.push(p.data().to_vec());
        });
        assert!(frames.len() > 50);

        let mut capped = Limited::new(TrafficGen::new(TrafficConfig::default()), 50);
        let mut prefix = Vec::new();
        capped.generate(Time::from_ms(1), &pool, &mut |p| {
            prefix.push(p.data().to_vec());
        });
        assert_eq!(prefix.len(), 50);
        assert_eq!(&frames[..50], &prefix[..]);
    }

    #[test]
    fn generator_capture_then_replay_preserves_frames() {
        // Capture one millisecond of synthetic traffic into a pcap...
        let pool = Mempool::new(1 << 16);
        let mut gen = TrafficGen::new(TrafficConfig::default());
        let mut file = Vec::new();
        let mut w = PcapWriter::new(&mut file).unwrap();
        let mut captured = Vec::new();
        gen.generate(Time::from_us(200), &pool, &mut |p| {
            w.write(p.ts_gen, p.data()).unwrap();
            captured.push(p.data().to_vec());
        });
        assert!(!captured.is_empty());

        // ...then replay it and compare frame bytes in order.
        let recs = read_pcap(&file[..]).unwrap();
        let mut replay = Replay::new(recs, 10.0);
        let mut replayed = Vec::new();
        replay.generate(Time::from_us(200), &pool, &mut |p| {
            replayed.push(p.data().to_vec());
        });
        assert!(replayed.len() >= captured.len().min(8));
        for (a, b) in captured.iter().zip(&replayed) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn replay_loops_and_paces() {
        let recs = vec![TraceRecord {
            ts: Time::ZERO,
            frame: vec![0u8; 64],
        }];
        let pool = Mempool::new(1 << 12);
        let mut r = Replay::new(recs, 10.0);
        let mut count = 0u64;
        r.generate(Time::from_us(100), &pool, &mut |_p| count += 1);
        // 10 Gbps of 64-byte frames = one per 67.2 ns => ~1488 in 100 us.
        assert!((1400..1600).contains(&count), "count = {count}");
        assert_eq!(r.emitted(), count);
    }
}
