//! Regenerates a single experiment:
//!
//! ```sh
//! cargo run --release -p nba-bench --bin repro -- fig12
//! cargo run --release -p nba-bench --bin repro            # everything
//! ```

use nba_bench::experiments::{self, ExpOpts};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = ExpOpts::from_env();
    if args.is_empty() {
        experiments::all(opts);
        return;
    }
    for a in &args {
        match a.as_str() {
            "table3" => experiments::table3(),
            "fig1" => drop(experiments::fig1(opts)),
            "fig2" => drop(experiments::fig2(opts)),
            "fig9" => drop(experiments::fig9(opts)),
            "fig10" => drop(experiments::fig10(opts)),
            "fig11" => drop(experiments::fig11(opts)),
            "fig12" => drop(experiments::fig12(opts)),
            "fig13" => drop(experiments::fig13(opts)),
            "fig14" => drop(experiments::fig14(opts)),
            "composition" => drop(experiments::composition(opts)),
            "aggregation" => drop(experiments::ablation_aggregation(opts)),
            "datablock" => drop(experiments::ablation_datablock(opts)),
            "bounded" => drop(experiments::bounded_latency(opts)),
            other => eprintln!("unknown experiment {other:?}"),
        }
    }
}
