//! DES ↔ live differential conformance: the same seeded workload pushed
//! through the deterministic simulator, the live runtime with one worker,
//! and the live runtime with four RSS-sharded workers must produce the
//! same per-packet verdicts and output frames — clean and under a seeded
//! fault plan.
//!
//! Per-packet verdicts are [`TxRecord`]s captured at the pipeline's TX
//! point on every runtime, canonicalized per app:
//!
//! * Routers (IPv4/IPv6) emit frames verbatim — compare everything.
//! * The IPsec gateway holds per-replica ESP sequence counters, so the
//!   ciphertext depends on which replica a flow landed on; conformance is
//!   judged on what a receiver can verify — the decrypted, authenticated
//!   plaintext via [`open_esp`].
//! * IDS assigns `IFACE_OUT` round-robin per replica (a load-spreading
//!   decision, not a per-packet verdict) — it is masked; the match
//!   annotations and frames must agree exactly.

use std::sync::Arc;
use std::time::Duration;

use nba::apps::ipsec::open_esp;
use nba::apps::{pipelines, AppConfig};
use nba::core::capture::{fnv1a, TxRecord};
use nba::core::element::ComputeMode;
use nba::core::lb;
use nba::core::runtime::live::{self, LiveConfig};
use nba::core::runtime::{des, PipelineBuilder, RuntimeConfig};
use nba::core::{FaultConfig, FaultPlan};
use nba::io::{IpVersion, Limited, PacketSource, PayloadFill, SizeDist, TrafficConfig, TrafficGen};
use nba::sim::topology::{GpuSpec, PortSpec, SocketSpec};
use nba::sim::{Time, Topology};

/// Total packets per run: small enough to drain in milliseconds, large
/// enough to cover many flows, batches, and offload aggregates.
const BUDGET: u64 = 1200;

/// One NIC port, one socket, one GPU — the live runtime's implicit shape
/// (its IO thread models a single ingress port).
fn one_port_topology() -> Topology {
    Topology {
        sockets: vec![SocketSpec { cores: 4 }],
        gpus: vec![GpuSpec {
            name: "GTX 680".to_owned(),
            socket: 0,
        }],
        ports: vec![PortSpec {
            speed_gbps: 10.0,
            socket: 0,
        }],
    }
}

fn traffic(ip: IpVersion, payload: PayloadFill) -> TrafficConfig {
    TrafficConfig {
        offered_gbps: 10.0,
        size: SizeDist::Fixed(256),
        ip_version: ip,
        flows: 64,
        zipf_alpha: 0.0,
        payload,
        seed: 7,
    }
}

fn des_cfg(fault: FaultConfig) -> RuntimeConfig {
    RuntimeConfig {
        topology: one_port_topology(),
        workers_per_socket: 3,
        compute: ComputeMode::Full,
        warmup: Time::from_ms(2),
        measure: Time::from_ms(30),
        pool_size: 1 << 15,
        rxq_depth: 4096,
        capture: true,
        fault,
        ..RuntimeConfig::default()
    }
}

fn live_cfg(workers: usize, traffic: &TrafficConfig, fault: FaultConfig) -> LiveConfig {
    LiveConfig {
        workers,
        duration: Duration::from_secs(20), // deadline only; drains in ms
        traffic: traffic.clone(),
        compute: ComputeMode::Full,
        fault,
        io_threads: 1,
        max_packets: Some(BUDGET),
        drain: true,
        capture: true,
        ..LiveConfig::default()
    }
}

fn des_capture(
    build: &PipelineBuilder,
    traffic: &TrafficConfig,
    fault: FaultConfig,
) -> Vec<TxRecord> {
    let cfg = des_cfg(fault);
    let source = Limited::new(TrafficGen::new(traffic.clone()), BUDGET);
    let report = des::run_with_sources(
        &cfg,
        build,
        &lb::shared(Box::new(lb::FixedFraction::new(0.5))),
        vec![Box::new(source) as Box<dyn PacketSource>],
        traffic.offered_gbps,
    );
    assert_eq!(report.rx_dropped, 0, "DES run must be lossless");
    assert_eq!(
        report.faults.snapshot.dropped_packets, 0,
        "fault plan must be output-preserving"
    );
    report.tx_capture
}

fn live_capture(
    build: &PipelineBuilder,
    traffic: &TrafficConfig,
    fault: FaultConfig,
    workers: usize,
) -> Vec<TxRecord> {
    let cfg = live_cfg(workers, traffic, fault);
    let report = live::run_sharded(
        &cfg,
        build,
        &lb::replicated(|| Box::new(lb::FixedFraction::new(0.5))),
    );
    assert_eq!(report.rx_dropped, 0, "draining live run must be lossless");
    assert_eq!(
        report.faults.snapshot.dropped_packets, 0,
        "fault plan must be output-preserving"
    );
    assert_eq!(report.shards.len(), workers);
    report.tx_capture
}

/// A canonical, runtime-independent digest of one transmitted packet.
type Verdict = (u64, u64, u64, u64, u64);

/// Routers: everything observable must agree, frame bytes included.
fn canon_exact(records: &[TxRecord]) -> Vec<Verdict> {
    let mut v: Vec<Verdict> = records
        .iter()
        .map(|r| {
            (
                r.flow,
                r.iface_out,
                r.ac_match,
                r.re_match,
                r.frame_digest(),
            )
        })
        .collect();
    v.sort_unstable();
    v
}

/// IDS: mask the per-replica round-robin egress port.
fn canon_ids(records: &[TxRecord]) -> Vec<Verdict> {
    let mut v: Vec<Verdict> = records
        .iter()
        .map(|r| (r.flow, 0, r.ac_match, r.re_match, r.frame_digest()))
        .collect();
    v.sort_unstable();
    v
}

/// IPsec: verdict is the routing decision plus the decrypted,
/// authenticated inner payload — what the far gateway would recover.
fn canon_ipsec(records: &[TxRecord], app: &AppConfig) -> Vec<Verdict> {
    let sa = pipelines::sa_table(app.seed);
    let mut v: Vec<Verdict> = records
        .iter()
        .map(|r| {
            let (proto, plaintext) =
                open_esp(&r.frame, &sa).expect("every TX frame must verify and decrypt");
            (r.flow, r.iface_out, u64::from(proto), fnv1a(&plaintext), 0)
        })
        .collect();
    v.sort_unstable();
    v
}

/// Runs one app through all three runtimes and compares canonical verdicts.
fn assert_conformance(
    build: &PipelineBuilder,
    traffic: &TrafficConfig,
    fault: &FaultConfig,
    canon: impl Fn(&[TxRecord]) -> Vec<Verdict>,
) {
    let des = canon(&des_capture(build, traffic, fault.clone()));
    assert!(
        des.len() as u64 >= BUDGET / 2,
        "suspiciously few DES verdicts: {}",
        des.len()
    );
    let live1 = canon(&live_capture(build, traffic, fault.clone(), 1));
    assert_eq!(des, live1, "DES and live(1) verdicts diverge");
    let live4 = canon(&live_capture(build, traffic, fault.clone(), 4));
    assert_eq!(des, live4, "DES and live(4) verdicts diverge");
}

fn clean() -> FaultConfig {
    FaultConfig::default()
}

/// An output-preserving storm: transient errors, corrupt output blocks,
/// timeouts, and a death/revival window. Every one of these degrades to
/// retries or the bit-identical CPU fallback — never to a changed packet.
fn faulted() -> FaultConfig {
    FaultConfig {
        plan: FaultPlan {
            seed: 99,
            timeout: 0.05,
            transient: 0.10,
            corrupt: 0.05,
            die_at: Some(Time::from_ms(1)),
            revive_at: Some(Time::from_ms(3)),
        },
        ..FaultConfig::default()
    }
}

#[test]
fn ipv4_router_conforms() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 2048,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Zeros);
    assert_conformance(&pipelines::ipv4_router(&app), &t, &clean(), canon_exact);
}

#[test]
fn ipv6_router_conforms() {
    let app = AppConfig {
        ports: 4,
        v6_routes: 2048,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V6, PayloadFill::Zeros);
    assert_conformance(&pipelines::ipv6_router(&app), &t, &clean(), canon_exact);
}

#[test]
fn ipsec_gateway_conforms() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 1024,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Ascii);
    let build = pipelines::ipsec_gateway(&app);
    assert_conformance(&build, &t, &clean(), |r| canon_ipsec(r, &app));
}

#[test]
fn ids_conforms() {
    let app = AppConfig {
        ports: 4,
        ids_literals: 32,
        ids_regexes: 4,
        ..AppConfig::default()
    };
    let t = traffic(
        IpVersion::V4,
        PayloadFill::Plant {
            needle: b"EVILPATTERN".to_vec(),
            every: 7,
        },
    );
    let (build, _alerts) = pipelines::ids(&app);
    assert_conformance(&build, &t, &clean(), canon_ids);
}

#[test]
fn ipv4_router_conforms_under_faults() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 2048,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Zeros);
    assert_conformance(&pipelines::ipv4_router(&app), &t, &faulted(), canon_exact);
}

#[test]
fn ipsec_gateway_conforms_under_faults() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 1024,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Ascii);
    let build = pipelines::ipsec_gateway(&app);
    assert_conformance(&build, &t, &faulted(), |r| canon_ipsec(r, &app));
}

/// The IDS alert totals (not just per-packet annotations) must agree
/// between DES and the sharded live runtime.
#[test]
fn ids_alert_totals_conform() {
    let app = AppConfig {
        ports: 4,
        ids_literals: 32,
        ids_regexes: 4,
        ..AppConfig::default()
    };
    let t = traffic(
        IpVersion::V4,
        PayloadFill::Plant {
            needle: b"EVILPATTERN".to_vec(),
            every: 7,
        },
    );
    let (build_des, alerts_des) = pipelines::ids(&app);
    let _ = des_capture(&build_des, &t, clean());
    let des_hits = alerts_des
        .literal_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(des_hits > 0, "needle never detected in DES");

    let (build_live, alerts_live) = pipelines::ids(&app);
    let _ = live_capture(&build_live, &t, clean(), 4);
    let live_hits = alerts_live
        .literal_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(des_hits, live_hits, "alert totals diverge");
}

/// `Arc` plumbing: the suite's canonical builders must be shareable
/// across the runs above without rebuilding tables.
#[test]
fn repeated_runs_are_reproducible() {
    let app = AppConfig {
        ports: 4,
        v4_routes: 512,
        ..AppConfig::default()
    };
    let t = traffic(IpVersion::V4, PayloadFill::Zeros);
    let build: PipelineBuilder = Arc::clone(&pipelines::ipv4_router(&app));
    let a = canon_exact(&live_capture(&build, &t, clean(), 4));
    let b = canon_exact(&live_capture(&build, &t, clean(), 4));
    assert_eq!(a, b, "same seed, same config, different verdicts");
}
