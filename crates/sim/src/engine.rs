//! The discrete-event engine.
//!
//! The engine steps a fixed set of [`Entity`] values in global virtual-time
//! order. Each entity owns a wake time; on each iteration the engine pops the
//! earliest-scheduled entity, calls [`Entity::step`] with the current time,
//! and reschedules it according to the returned [`Wake`].
//!
//! Entities communicate through shared single-threaded queues (see
//! [`crate::queue`]); when a producer needs a sleeping consumer to run, it
//! requests a wake-up through [`Ctx::wake`].
//!
//! The scheduling order is deterministic: ties on time are broken by entity
//! id, so a simulation with the same inputs always produces the same outputs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::Time;

/// Identifies an entity registered with an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub usize);

/// What an entity wants the engine to do with it after a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// Run again at the given absolute time (clamped to be >= now).
    At(Time),
    /// Sleep until another entity requests a wake via [`Ctx::wake`].
    Idle,
    /// Never run again.
    Done,
}

/// Per-step context handed to entities.
///
/// Wake requests are buffered and applied after the step returns, so an
/// entity may wake any other entity (or itself) without aliasing issues.
pub struct Ctx {
    now: Time,
    wakes: Vec<(EntityId, Time)>,
}

impl Ctx {
    /// The current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Requests that `id` be scheduled no later than `at`.
    ///
    /// If the entity is already scheduled earlier, the request is a no-op.
    /// Waking an entity that returned [`Wake::Done`] has no effect.
    pub fn wake(&mut self, id: EntityId, at: Time) {
        self.wakes.push((id, at));
    }
}

/// A simulated actor: a worker core, a device thread, a NIC port, a traffic
/// source...
pub trait Entity {
    /// Advances the entity at virtual time `now` and reports when it next
    /// wants to run.
    fn step(&mut self, now: Time, ctx: &mut Ctx) -> Wake;

    /// Human-readable name used in diagnostics.
    fn name(&self) -> &str {
        "entity"
    }
}

/// Scheduling state of one registered entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SchedState {
    /// Scheduled at the contained time (a matching heap entry exists).
    Scheduled(Time),
    /// Sleeping; only an external wake can reschedule it.
    Idle,
    /// Finished for good.
    Done,
}

/// Why [`Engine::run_until`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stop {
    /// The time horizon was reached with work still pending.
    Horizon,
    /// Every entity is idle or done; time can no longer advance.
    Quiescent,
}

/// The single-threaded discrete-event engine.
pub struct Engine {
    entities: Vec<Box<dyn Entity>>,
    state: Vec<SchedState>,
    // Min-heap of (time, id); entries may be stale, `state` is authoritative.
    heap: BinaryHeap<Reverse<(Time, usize)>>,
    now: Time,
    steps: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// Creates an empty engine at time zero.
    pub fn new() -> Engine {
        Engine {
            entities: Vec::new(),
            state: Vec::new(),
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            steps: 0,
        }
    }

    /// Registers an entity to first run at `at` and returns its id.
    pub fn add(&mut self, entity: Box<dyn Entity>, at: Time) -> EntityId {
        let id = EntityId(self.entities.len());
        self.entities.push(entity);
        self.state.push(SchedState::Scheduled(at));
        self.heap.push(Reverse((at, id.0)));
        id
    }

    /// Registers an entity that starts idle (woken by someone else).
    pub fn add_idle(&mut self, entity: Box<dyn Entity>) -> EntityId {
        let id = EntityId(self.entities.len());
        self.entities.push(entity);
        self.state.push(SchedState::Idle);
        id
    }

    /// The current virtual time (the time of the last processed event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total entity steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Runs until virtual time exceeds `horizon` or no entity is runnable.
    ///
    /// Events scheduled exactly at `horizon` are still executed.
    pub fn run_until(&mut self, horizon: Time) -> Stop {
        loop {
            // Pop the earliest non-stale heap entry.
            let (at, idx) = loop {
                match self.heap.peek() {
                    None => return Stop::Quiescent,
                    Some(&Reverse((t, i))) => {
                        if self.state[i] == SchedState::Scheduled(t) {
                            break (t, i);
                        }
                        // Stale entry (entity was rescheduled or finished).
                        self.heap.pop();
                    }
                }
            };
            if at > horizon {
                return Stop::Horizon;
            }
            self.heap.pop();
            self.now = at;
            self.steps += 1;

            let mut ctx = Ctx {
                now: at,
                wakes: Vec::new(),
            };
            let wake = self.entities[idx].step(at, &mut ctx);
            self.state[idx] = match wake {
                Wake::At(t) => {
                    let t = t.max(at);
                    self.heap.push(Reverse((t.max(at), idx)));
                    SchedState::Scheduled(t)
                }
                Wake::Idle => SchedState::Idle,
                Wake::Done => SchedState::Done,
            };
            for (EntityId(widx), wat) in ctx.wakes {
                self.apply_wake(widx, wat.max(at));
            }
        }
    }

    /// Forces entity `id` to be scheduled no later than `at` (used by
    /// harnesses to kick off initially-idle entities).
    pub fn wake(&mut self, id: EntityId, at: Time) {
        self.apply_wake(id.0, at.max(self.now));
    }

    fn apply_wake(&mut self, idx: usize, at: Time) {
        match self.state[idx] {
            SchedState::Done => {}
            SchedState::Scheduled(cur) if cur <= at => {}
            _ => {
                self.state[idx] = SchedState::Scheduled(at);
                self.heap.push(Reverse((at, idx)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Appends `(name, time_ns)` to a shared log every `period`, `count` times.
    struct Ticker {
        name: &'static str,
        period: Time,
        remaining: u32,
        log: Rc<RefCell<Vec<(&'static str, u64)>>>,
    }

    impl Entity for Ticker {
        fn step(&mut self, now: Time, _ctx: &mut Ctx) -> Wake {
            self.log.borrow_mut().push((self.name, now.as_ns()));
            self.remaining -= 1;
            if self.remaining == 0 {
                Wake::Done
            } else {
                Wake::At(now + self.period)
            }
        }

        fn name(&self) -> &str {
            self.name
        }
    }

    #[test]
    fn interleaves_in_time_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut eng = Engine::new();
        eng.add(
            Box::new(Ticker {
                name: "a",
                period: Time::from_ns(10),
                remaining: 3,
                log: log.clone(),
            }),
            Time::ZERO,
        );
        eng.add(
            Box::new(Ticker {
                name: "b",
                period: Time::from_ns(15),
                remaining: 2,
                log: log.clone(),
            }),
            Time::from_ns(5),
        );
        assert_eq!(eng.run_until(Time::from_secs(1)), Stop::Quiescent);
        assert_eq!(
            *log.borrow(),
            vec![("a", 0), ("b", 5), ("a", 10), ("a", 20), ("b", 20)]
        );
    }

    #[test]
    fn ties_break_by_entity_id() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut eng = Engine::new();
        for name in ["first", "second"] {
            eng.add(
                Box::new(Ticker {
                    name,
                    period: Time::from_ns(1),
                    remaining: 1,
                    log: log.clone(),
                }),
                Time::from_ns(7),
            );
        }
        eng.run_until(Time::from_secs(1));
        assert_eq!(*log.borrow(), vec![("first", 7), ("second", 7)]);
    }

    #[test]
    fn horizon_stops_before_future_events() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut eng = Engine::new();
        eng.add(
            Box::new(Ticker {
                name: "t",
                period: Time::from_us(1),
                remaining: 100,
                log: log.clone(),
            }),
            Time::ZERO,
        );
        assert_eq!(eng.run_until(Time::from_us(3)), Stop::Horizon);
        // Events at 0, 1, 2, 3 us have run; the 4 us event has not.
        assert_eq!(log.borrow().len(), 4);
        assert_eq!(eng.now(), Time::from_us(3));
    }

    /// An entity that idles immediately and logs when woken.
    struct Sleeper {
        log: Rc<RefCell<Vec<u64>>>,
    }

    impl Entity for Sleeper {
        fn step(&mut self, now: Time, _ctx: &mut Ctx) -> Wake {
            self.log.borrow_mut().push(now.as_ns());
            Wake::Idle
        }
    }

    /// Wakes a target entity once at a fixed delay.
    struct Waker {
        target: EntityId,
        at: Time,
    }

    impl Entity for Waker {
        fn step(&mut self, _now: Time, ctx: &mut Ctx) -> Wake {
            ctx.wake(self.target, self.at);
            Wake::Done
        }
    }

    #[test]
    fn idle_entity_runs_only_when_woken() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut eng = Engine::new();
        let sleeper = eng.add_idle(Box::new(Sleeper { log: log.clone() }));
        eng.add(
            Box::new(Waker {
                target: sleeper,
                at: Time::from_ns(42),
            }),
            Time::from_ns(1),
        );
        eng.run_until(Time::from_secs(1));
        assert_eq!(*log.borrow(), vec![42]);
    }

    #[test]
    fn waking_a_done_entity_is_ignored() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut eng = Engine::new();
        let t = eng.add(
            Box::new(Ticker {
                name: "t",
                period: Time::from_ns(1),
                remaining: 1,
                log: log.clone(),
            }),
            Time::ZERO,
        );
        eng.run_until(Time::from_ns(10));
        eng.wake(t, Time::from_ns(20));
        assert_eq!(eng.run_until(Time::from_secs(1)), Stop::Quiescent);
        assert_eq!(log.borrow().len(), 1);
    }

    #[test]
    fn earlier_wake_overrides_later_schedule() {
        // An entity scheduled far in the future is pulled earlier by a wake.
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut eng = Engine::new();
        let t = eng.add(
            Box::new(Ticker {
                name: "t",
                period: Time::from_ns(1),
                remaining: 1,
                log: log.clone(),
            }),
            Time::from_ms(1),
        );
        eng.wake(t, Time::from_ns(3));
        eng.run_until(Time::from_secs(1));
        assert_eq!(*log.borrow(), vec![("t", 3)]);
    }
}
