// IPv4 router (Figure 8a): header check, load balance, DIR-24-8 lookup,
// TTL decrement. Matches `pipelines::ipv4_router`.
src :: FromInput();
chk :: CheckIPHeader();
lb  :: LoadBalance();
rt  :: IPLookup();
ttl :: DecIPTTL();
out :: ToOutput();

src -> chk;
chk [0] -> lb -> rt -> ttl -> out;
chk [1] -> Discard;
