//! Ethernet II header view.

use super::ParseError;

/// Length of an Ethernet II header.
pub const ETHER_HDR_LEN: usize = 14;

/// A read-only view of an Ethernet II frame.
#[derive(Debug, Clone, Copy)]
pub struct EtherView<'a> {
    bytes: &'a [u8],
}

impl<'a> EtherView<'a> {
    /// Parses a frame, requiring at least the 14-byte header.
    pub fn parse(bytes: &'a [u8]) -> Result<EtherView<'a>, ParseError> {
        if bytes.len() < ETHER_HDR_LEN {
            return Err(ParseError::Truncated);
        }
        Ok(EtherView { bytes })
    }

    /// Destination MAC address.
    pub fn dst(&self) -> [u8; 6] {
        self.bytes[0..6].try_into().unwrap()
    }

    /// Source MAC address.
    pub fn src(&self) -> [u8; 6] {
        self.bytes[6..12].try_into().unwrap()
    }

    /// EtherType field.
    pub fn ethertype(&self) -> u16 {
        u16::from_be_bytes([self.bytes[12], self.bytes[13]])
    }

    /// `true` if the destination is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        self.dst() == [0xff; 6]
    }

    /// `true` if the destination has the group (multicast) bit set.
    pub fn is_multicast(&self) -> bool {
        self.bytes[0] & 0x01 != 0
    }

    /// Everything after the Ethernet header.
    pub fn payload(&self) -> &'a [u8] {
        &self.bytes[ETHER_HDR_LEN..]
    }
}

/// Swaps source and destination MACs in place (the L2 forwarder element).
///
/// # Panics
///
/// Panics if `frame` is shorter than the Ethernet header.
pub fn swap_addresses(frame: &mut [u8]) {
    assert!(frame.len() >= ETHER_HDR_LEN);
    for i in 0..6 {
        frame.swap(i, i + 6);
    }
}

/// Overwrites the destination MAC in place.
///
/// # Panics
///
/// Panics if `frame` is shorter than the Ethernet header.
pub fn set_dst(frame: &mut [u8], mac: [u8; 6]) {
    frame[0..6].copy_from_slice(&mac);
}

/// Overwrites the source MAC in place.
///
/// # Panics
///
/// Panics if `frame` is shorter than the Ethernet header.
pub fn set_src(frame: &mut [u8], mac: [u8; 6]) {
    frame[6..12].copy_from_slice(&mac);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut f = vec![0u8; 20];
        f[0..6].copy_from_slice(&[2, 2, 3, 4, 5, 6]);
        f[6..12].copy_from_slice(&[7, 8, 9, 10, 11, 12]);
        f[12..14].copy_from_slice(&0x0800u16.to_be_bytes());
        f
    }

    #[test]
    fn fields_parse() {
        let f = sample();
        let v = EtherView::parse(&f).unwrap();
        assert_eq!(v.dst(), [2, 2, 3, 4, 5, 6]);
        assert_eq!(v.src(), [7, 8, 9, 10, 11, 12]);
        assert_eq!(v.ethertype(), 0x0800);
        assert_eq!(v.payload().len(), 6);
        assert!(!v.is_broadcast());
        assert!(!v.is_multicast());
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(
            EtherView::parse(&[0u8; 13]).unwrap_err(),
            ParseError::Truncated
        );
    }

    #[test]
    fn swap_is_involutive() {
        let mut f = sample();
        swap_addresses(&mut f);
        let v = EtherView::parse(&f).unwrap();
        assert_eq!(v.dst(), [7, 8, 9, 10, 11, 12]);
        swap_addresses(&mut f);
        assert_eq!(f, sample());
    }

    #[test]
    fn broadcast_and_multicast_detected() {
        let mut f = sample();
        f[0..6].copy_from_slice(&[0xff; 6]);
        let v = EtherView::parse(&f).unwrap();
        assert!(v.is_broadcast());
        assert!(v.is_multicast());
        f[0] = 0x01;
        f[1] = 0;
        let v = EtherView::parse(&f).unwrap();
        assert!(!v.is_broadcast());
        assert!(v.is_multicast());
    }
}
