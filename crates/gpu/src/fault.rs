//! Deterministic fault injection for the device shim.
//!
//! A [`FaultPlan`] makes the simulated accelerator fail in *typed*,
//! *reproducible* ways: per-attempt probabilities for timeouts, transient
//! errors, and corrupted output blocks, plus an optional whole-device death
//! window. The [`FaultInjector`] draws from a seeded splitmix64 stream — a
//! pure function of (seed, draw index) with no wall-clock input — so a DES
//! run under a fixed plan is bit-reproducible: same seed, same faults, same
//! recovery, same packet counts.

use nba_sim::Time;

/// The typed ways a device task attempt can fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The task never completes; only a watchdog deadline detects it.
    Timeout,
    /// A retryable submission error (the ECC-hiccup / queue-glitch class).
    Transient,
    /// The task completes but its output block has the wrong length.
    CorruptOutput,
    /// The whole device is dead (inside the plan's death window).
    DeviceDeath,
}

/// A scheduled worker-thread kill, keyed on that worker's own processed
/// packet counter (not wall clock), so the trigger point is deterministic
/// under flow-affine steering: `worker_kill=2@300` kills worker 2 once it
/// has pulled its 300th packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerKill {
    /// Worker (shard) index to kill.
    pub worker: u32,
    /// Trigger once the worker has processed this many packets.
    pub at_packet: u64,
}

/// A scheduled worker stall: the worker stops consuming for a wall-clock
/// window, then resumes (`worker_stall=1@300+5` = worker 1 sleeps 5 ms at
/// its 300th packet). Output-preserving in drain mode — the supervisor may
/// still presume it dead and re-steer its buckets meanwhile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerStall {
    /// Worker (shard) index to stall.
    pub worker: u32,
    /// Trigger once the worker has processed this many packets.
    pub at_packet: u64,
    /// Stall duration in milliseconds.
    pub millis: f64,
}

/// A seeded, declarative fault schedule for one device.
///
/// Probabilities apply independently to every kernel *attempt* (retries
/// draw again). The default plan is inactive: no faults, identical behavior
/// to a build without the fault layer.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-attempt fault draws.
    pub seed: u64,
    /// Probability an attempt times out (no completion), in `[0, 1]`.
    pub timeout: f64,
    /// Probability of a retryable transient error, in `[0, 1]`.
    pub transient: f64,
    /// Probability the output block comes back truncated, in `[0, 1]`.
    pub corrupt: f64,
    /// The device dies at this time…
    pub die_at: Option<Time>,
    /// …and revives at this time (`None` = stays dead).
    pub revive_at: Option<Time>,
    /// Scheduled worker-thread kills (supervision drills).
    pub worker_kill: Vec<WorkerKill>,
    /// Scheduled worker-thread stalls (supervision drills).
    pub worker_stall: Vec<WorkerStall>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 42,
            timeout: 0.0,
            transient: 0.0,
            corrupt: 0.0,
            die_at: None,
            revive_at: None,
            worker_kill: Vec::new(),
            worker_stall: Vec::new(),
        }
    }
}

/// A [`FaultPlan::parse_spanned`] error carrying the byte span of the
/// offending token inside the (single-line) spec string, so CLI surfaces
/// can point at the exact character instead of the whole flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// Byte offset of the offending token within the spec.
    pub offset: usize,
    /// Byte length of the offending token.
    pub len: usize,
    /// What is wrong with it.
    pub msg: String,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "at {}..{}: {}",
            self.offset,
            self.offset + self.len,
            self.msg
        )
    }
}

impl std::error::Error for PlanParseError {}

impl FaultPlan {
    /// `true` if the plan can ever inject anything.
    pub fn is_active(&self) -> bool {
        self.device_active() || self.worker_faults_active()
    }

    /// `true` if the *device* path can ever see a fault. The injector and
    /// circuit breaker stay out of the data path entirely when this is
    /// false, even if worker drills are scheduled — a worker-only plan
    /// keeps the offload path bit-identical to a clean run.
    pub fn device_active(&self) -> bool {
        self.timeout > 0.0 || self.transient > 0.0 || self.corrupt > 0.0 || self.die_at.is_some()
    }

    /// `true` if any worker kill/stall drill is scheduled.
    pub fn worker_faults_active(&self) -> bool {
        !self.worker_kill.is_empty() || !self.worker_stall.is_empty()
    }

    /// The scheduled kill for `worker`, if any (first match wins).
    pub fn kill_for(&self, worker: u32) -> Option<WorkerKill> {
        self.worker_kill
            .iter()
            .copied()
            .find(|k| k.worker == worker)
    }

    /// The scheduled stall for `worker`, if any (first match wins).
    pub fn stall_for(&self, worker: u32) -> Option<WorkerStall> {
        self.worker_stall
            .iter()
            .copied()
            .find(|k| k.worker == worker)
    }

    /// `true` while the device is inside the death window at `now`.
    pub fn device_dead(&self, now: Time) -> bool {
        match self.die_at {
            Some(t) if now >= t => self.revive_at.is_none_or(|r| now < r),
            _ => false,
        }
    }

    /// Parses the flag/config syntax:
    /// `seed=7,transient=0.2,timeout=0.1,corrupt=0.05,die_at_ms=25,revive_at_ms=40,worker_kill=2@300,worker_stall=1@300+5`.
    /// Keys may appear in any order; `worker_kill`/`worker_stall` may repeat
    /// (one event each); unknown keys are errors so typos in a chaos-CI
    /// matrix fail loudly instead of silently running clean.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        FaultPlan::parse_spanned(s).map_err(|e| format!("fault plan: {e}"))
    }

    /// [`FaultPlan::parse`] with a token-accurate error span: the returned
    /// error names the exact byte range of the bad key or value.
    pub fn parse_spanned(s: &str) -> Result<FaultPlan, PlanParseError> {
        let err = |offset: usize, len: usize, msg: String| PlanParseError { offset, len, msg };
        let mut plan = FaultPlan::default();
        let mut pos = 0usize;
        for part in s.split(',') {
            let part_off = pos;
            pos += part.len() + 1;
            let trimmed = part.trim();
            if trimmed.is_empty() {
                continue;
            }
            let tok_off = part_off + (part.len() - part.trim_start().len());
            let Some((key, val)) = trimmed.split_once('=') else {
                return Err(err(
                    tok_off,
                    trimmed.len(),
                    format!("expected key=value, got `{trimmed}`"),
                ));
            };
            let key_t = key.trim_end();
            let val_t = val.trim();
            let key_span = (tok_off, key_t.len().max(1));
            let val_off = tok_off + key.len() + 1 + (val.len() - val.trim_start().len());
            let val_span = (val_off, val_t.len().max(1));
            let fval = || -> Result<f64, PlanParseError> {
                val_t.parse::<f64>().map_err(|e| {
                    err(
                        val_span.0,
                        val_span.1,
                        format!("bad value for `{key_t}`: {e}"),
                    )
                })
            };
            let prob = || -> Result<f64, PlanParseError> {
                let v = fval()?;
                if (0.0..=1.0).contains(&v) {
                    Ok(v)
                } else {
                    Err(err(
                        val_span.0,
                        val_span.1,
                        format!("`{key_t}` must be in [0, 1], got {v}"),
                    ))
                }
            };
            let ms = || -> Result<Time, PlanParseError> { Ok(Time::from_secs_f64(fval()? / 1e3)) };
            // `W@N[+MS]`: worker index, trigger packet, optional stall window.
            let worker_at = |with_ms: bool| -> Result<(u32, u64, f64), PlanParseError> {
                let bad = |msg: String| err(val_span.0, val_span.1, msg);
                let (w, rest) = val_t.split_once('@').ok_or_else(|| {
                    bad(format!(
                        "`{key_t}` wants worker@packet{}, got `{val_t}`",
                        if with_ms { "+ms" } else { "" }
                    ))
                })?;
                let worker: u32 = w
                    .parse()
                    .map_err(|e| bad(format!("bad worker index `{w}`: {e}")))?;
                let (at, millis) = match (rest.split_once('+'), with_ms) {
                    (Some((at, ms)), true) => {
                        let millis: f64 = ms
                            .parse()
                            .map_err(|e| bad(format!("bad stall millis `{ms}`: {e}")))?;
                        if !millis.is_finite() || millis <= 0.0 {
                            return Err(bad(format!("stall window must be positive, got {ms}")));
                        }
                        (at, millis)
                    }
                    (Some(_), false) => {
                        return Err(bad(format!("`{key_t}` takes no `+ms` suffix")));
                    }
                    (None, true) => {
                        return Err(bad(format!(
                            "`{key_t}` wants worker@packet+ms, got `{val_t}`"
                        )));
                    }
                    (None, false) => (rest, 0.0),
                };
                let at_packet: u64 = at
                    .parse()
                    .map_err(|e| bad(format!("bad trigger packet `{at}`: {e}")))?;
                Ok((worker, at_packet, millis))
            };
            match key_t {
                "seed" => {
                    plan.seed = val_t
                        .parse()
                        .map_err(|e| err(val_span.0, val_span.1, format!("bad seed: {e}")))?;
                }
                "timeout" => plan.timeout = prob()?,
                "transient" => plan.transient = prob()?,
                "corrupt" => plan.corrupt = prob()?,
                "die_at_ms" => plan.die_at = Some(ms()?),
                "revive_at_ms" => plan.revive_at = Some(ms()?),
                "worker_kill" => {
                    let (worker, at_packet, _) = worker_at(false)?;
                    plan.worker_kill.push(WorkerKill { worker, at_packet });
                }
                "worker_stall" => {
                    let (worker, at_packet, millis) = worker_at(true)?;
                    plan.worker_stall.push(WorkerStall {
                        worker,
                        at_packet,
                        millis,
                    });
                }
                other => {
                    return Err(err(
                        key_span.0,
                        key_span.1,
                        format!("unknown key `{other}`"),
                    ));
                }
            }
        }
        Ok(plan)
    }

    /// Canonical one-line rendering (config digests, report metadata).
    /// Inverse of [`FaultPlan::parse`] up to float formatting.
    pub fn render(&self) -> String {
        let mut s = format!(
            "seed={},timeout={},transient={},corrupt={}",
            self.seed, self.timeout, self.transient, self.corrupt
        );
        if let Some(t) = self.die_at {
            s.push_str(&format!(",die_at_ms={}", t.as_secs_f64() * 1e3));
        }
        if let Some(t) = self.revive_at {
            s.push_str(&format!(",revive_at_ms={}", t.as_secs_f64() * 1e3));
        }
        for k in &self.worker_kill {
            s.push_str(&format!(",worker_kill={}@{}", k.worker, k.at_packet));
        }
        for k in &self.worker_stall {
            s.push_str(&format!(
                ",worker_stall={}@{}+{}",
                k.worker, k.at_packet, k.millis
            ));
        }
        s
    }
}

/// Draws typed faults for one device from a seeded deterministic stream.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    state: u64,
}

impl FaultInjector {
    /// Creates an injector over `plan` (the seed fully determines draws).
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let state = plan.seed;
        FaultInjector { plan, state }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// splitmix64: the standard 64-bit mixer — tiny, seedable, and good
    /// enough to decorrelate per-attempt draws.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` (53 mantissa bits).
    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Decides the fate of one kernel attempt submitted at `now`.
    /// `None` = the attempt succeeds. Device death preempts the
    /// probabilistic faults (a dead device fails every attempt the same
    /// way); the probability draw is consumed regardless so the stream
    /// stays aligned across plans that differ only in the death window.
    pub fn draw(&mut self, now: Time) -> Option<FaultKind> {
        let u = self.next_unit();
        if self.plan.device_dead(now) {
            return Some(FaultKind::DeviceDeath);
        }
        let mut edge = self.plan.timeout;
        if u < edge {
            return Some(FaultKind::Timeout);
        }
        edge += self.plan.transient;
        if u < edge {
            return Some(FaultKind::Transient);
        }
        edge += self.plan.corrupt;
        if u < edge {
            return Some(FaultKind::CorruptOutput);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inactive_and_never_injects() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        let mut inj = FaultInjector::new(plan);
        for i in 0..1000 {
            assert_eq!(inj.draw(Time::from_us(i)), None);
        }
    }

    #[test]
    fn parse_round_trips_through_render() {
        let plan = FaultPlan::parse(
            "seed=7,transient=0.25,timeout=0.1,corrupt=0.05,die_at_ms=25,revive_at_ms=40",
        )
        .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.transient, 0.25);
        assert_eq!(plan.die_at, Some(Time::from_us(25_000)));
        assert_eq!(plan.revive_at, Some(Time::from_us(40_000)));
        assert!(plan.is_active());
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bad_probabilities() {
        assert!(FaultPlan::parse("transiant=0.5").is_err());
        assert!(FaultPlan::parse("transient=1.5").is_err());
        assert!(FaultPlan::parse("seed").is_err());
        // The empty plan parses to the inactive default.
        assert!(!FaultPlan::parse("").unwrap().is_active());
    }

    #[test]
    fn parse_worker_drills_round_trip_and_classify() {
        let plan =
            FaultPlan::parse("worker_kill=2@300,worker_stall=1@150+5,worker_kill=3@900").unwrap();
        assert_eq!(
            plan.worker_kill,
            vec![
                WorkerKill {
                    worker: 2,
                    at_packet: 300
                },
                WorkerKill {
                    worker: 3,
                    at_packet: 900
                },
            ]
        );
        assert_eq!(
            plan.worker_stall,
            vec![WorkerStall {
                worker: 1,
                at_packet: 150,
                millis: 5.0
            }]
        );
        assert_eq!(plan.kill_for(2).unwrap().at_packet, 300);
        assert_eq!(plan.kill_for(0), None);
        assert_eq!(plan.stall_for(1).unwrap().millis, 5.0);
        // Worker-only plans never arm the device injector.
        assert!(plan.is_active());
        assert!(!plan.device_active());
        assert!(plan.worker_faults_active());
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
    }

    #[test]
    fn spanned_errors_point_at_the_offending_token() {
        // Unknown key: the span covers exactly `worker_kil`.
        let spec = "seed=7,worker_kil=2@300";
        let e = FaultPlan::parse_spanned(spec).unwrap_err();
        assert_eq!(&spec[e.offset..e.offset + e.len], "worker_kil");
        assert!(e.msg.contains("unknown key"), "{e}");

        // Bad value: the span covers exactly the malformed value token,
        // even with surrounding whitespace.
        let spec = "seed=7, worker_kill = 2#300 ,transient=0.1";
        let e = FaultPlan::parse_spanned(spec).unwrap_err();
        assert_eq!(&spec[e.offset..e.offset + e.len], "2#300");
        assert!(e.msg.contains("worker@packet"), "{e}");

        // A stall without its window names the missing piece.
        let e = FaultPlan::parse_spanned("worker_stall=1@300").unwrap_err();
        assert!(e.msg.contains("worker@packet+ms"), "{e}");
        // A kill must not carry one.
        let e = FaultPlan::parse_spanned("worker_kill=1@300+5").unwrap_err();
        assert!(e.msg.contains("no `+ms`"), "{e}");
        // Zero/negative stall windows are rejected.
        assert!(FaultPlan::parse_spanned("worker_stall=1@300+0").is_err());

        // The legacy keys keep their spans too.
        let spec = "transient=1.5";
        let e = FaultPlan::parse_spanned(spec).unwrap_err();
        assert_eq!(&spec[e.offset..e.offset + e.len], "1.5");
    }

    #[test]
    fn death_window_bounds_device_death() {
        let plan = FaultPlan {
            die_at: Some(Time::from_ms(10)),
            revive_at: Some(Time::from_ms(20)),
            ..FaultPlan::default()
        };
        assert!(!plan.device_dead(Time::from_ms(9)));
        assert!(plan.device_dead(Time::from_ms(10)));
        assert!(plan.device_dead(Time::from_ms(19)));
        assert!(!plan.device_dead(Time::from_ms(20)));
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.draw(Time::from_ms(15)), Some(FaultKind::DeviceDeath));
        assert_eq!(inj.draw(Time::from_ms(25)), None);
    }

    #[test]
    fn same_seed_draws_identical_fault_streams() {
        let plan = FaultPlan {
            timeout: 0.1,
            transient: 0.2,
            corrupt: 0.1,
            ..FaultPlan::default()
        };
        let mut a = FaultInjector::new(plan.clone());
        let mut b = FaultInjector::new(plan.clone());
        let draws_a: Vec<_> = (0..500).map(|i| a.draw(Time::from_us(i))).collect();
        let draws_b: Vec<_> = (0..500).map(|i| b.draw(Time::from_us(i))).collect();
        assert_eq!(draws_a, draws_b);
        // A different seed diverges (overwhelmingly likely over 500 draws).
        let mut c = FaultInjector::new(FaultPlan { seed: 43, ..plan });
        let draws_c: Vec<_> = (0..500).map(|i| c.draw(Time::from_us(i))).collect();
        assert_ne!(draws_a, draws_c);
    }

    #[test]
    fn probabilities_hit_their_rates_roughly() {
        let plan = FaultPlan {
            timeout: 0.1,
            transient: 0.3,
            corrupt: 0.05,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan);
        let mut counts = [0usize; 4];
        let n = 20_000;
        for i in 0..n {
            match inj.draw(Time::from_us(i as u64)) {
                Some(FaultKind::Timeout) => counts[0] += 1,
                Some(FaultKind::Transient) => counts[1] += 1,
                Some(FaultKind::CorruptOutput) => counts[2] += 1,
                Some(FaultKind::DeviceDeath) => counts[3] += 1,
                None => {}
            }
        }
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(counts[0]) - 0.1).abs() < 0.02, "{counts:?}");
        assert!((frac(counts[1]) - 0.3).abs() < 0.02, "{counts:?}");
        assert!((frac(counts[2]) - 0.05).abs() < 0.02, "{counts:?}");
        assert_eq!(counts[3], 0);
    }
}
