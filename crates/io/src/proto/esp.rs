//! IPsec ESP (RFC 4303) header/trailer layout helpers.
//!
//! The IPsec gateway application encapsulates IPv4 payloads in ESP with
//! AES-128-CTR encryption and HMAC-SHA1 authentication, mirroring the
//! paper's gateway. This module only knows the wire layout; cryptography
//! lives in `nba-crypto` and the element logic in `nba-apps`.

use super::ParseError;

/// ESP header: SPI (4 bytes) + sequence number (4 bytes).
pub const ESP_HDR_LEN: usize = 8;
/// AES-CTR initialization vector carried after the ESP header.
pub const ESP_IV_LEN: usize = 16;
/// Truncated HMAC-SHA1 integrity check value (RFC 2404).
pub const ESP_ICV_LEN: usize = 12;
/// ESP trailer: pad length (1 byte) + next header (1 byte).
pub const ESP_TRAILER_LEN: usize = 2;

/// A read-only view of an ESP packet.
#[derive(Debug, Clone, Copy)]
pub struct EspView<'a> {
    bytes: &'a [u8],
}

impl<'a> EspView<'a> {
    /// Parses an ESP packet: header + IV + at least the trailer + ICV.
    pub fn parse(bytes: &'a [u8]) -> Result<EspView<'a>, ParseError> {
        if bytes.len() < ESP_HDR_LEN + ESP_IV_LEN + ESP_TRAILER_LEN + ESP_ICV_LEN {
            return Err(ParseError::Truncated);
        }
        Ok(EspView { bytes })
    }

    /// Security parameter index.
    pub fn spi(&self) -> u32 {
        u32::from_be_bytes(self.bytes[0..4].try_into().unwrap())
    }

    /// Anti-replay sequence number.
    pub fn seq(&self) -> u32 {
        u32::from_be_bytes(self.bytes[4..8].try_into().unwrap())
    }

    /// The initialization vector following the header.
    pub fn iv(&self) -> [u8; ESP_IV_LEN] {
        self.bytes[ESP_HDR_LEN..ESP_HDR_LEN + ESP_IV_LEN]
            .try_into()
            .unwrap()
    }

    /// Encrypted region: everything between the IV and the ICV (includes the
    /// encrypted trailer).
    pub fn ciphertext(&self) -> &'a [u8] {
        &self.bytes[ESP_HDR_LEN + ESP_IV_LEN..self.bytes.len() - ESP_ICV_LEN]
    }

    /// The trailing integrity check value.
    pub fn icv(&self) -> [u8; ESP_ICV_LEN] {
        self.bytes[self.bytes.len() - ESP_ICV_LEN..]
            .try_into()
            .unwrap()
    }

    /// The region covered by the ICV: header + IV + ciphertext (RFC 4303 §2.8).
    pub fn authenticated_region(&self) -> &'a [u8] {
        &self.bytes[..self.bytes.len() - ESP_ICV_LEN]
    }
}

/// Returns the padded plaintext length for a payload of `len` bytes: the
/// payload plus the 2-byte trailer, rounded up to the AES block (16 bytes).
pub fn padded_plaintext_len(len: usize) -> usize {
    let with_trailer = len + ESP_TRAILER_LEN;
    with_trailer.div_ceil(16) * 16
}

/// Total ESP overhead added to a payload of `len` bytes.
pub fn esp_overhead(len: usize) -> usize {
    ESP_HDR_LEN + ESP_IV_LEN + (padded_plaintext_len(len) - len) + ESP_ICV_LEN
}

/// Writes the ESP header fields into the first 8 bytes of `out`.
///
/// # Panics
///
/// Panics if `out` is shorter than the ESP header.
pub fn write_header(out: &mut [u8], spi: u32, seq: u32) {
    out[0..4].copy_from_slice(&spi.to_be_bytes());
    out[4..8].copy_from_slice(&seq.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_rounds_to_block() {
        // len + 2 rounded up to 16.
        assert_eq!(padded_plaintext_len(14), 16);
        assert_eq!(padded_plaintext_len(15), 32);
        assert_eq!(padded_plaintext_len(30), 32);
        assert_eq!(padded_plaintext_len(0), 16);
    }

    #[test]
    fn overhead_is_hdr_iv_pad_icv() {
        // 14-byte payload: pad to 16 => 2 pad bytes incl. trailer.
        assert_eq!(esp_overhead(14), 8 + 16 + 2 + 12);
    }

    #[test]
    fn view_round_trips() {
        let payload_ct = 32;
        let total = ESP_HDR_LEN + ESP_IV_LEN + payload_ct + ESP_ICV_LEN;
        let mut b = vec![0u8; total];
        write_header(&mut b, 0xabcd1234, 77);
        b[ESP_HDR_LEN] = 0x42; // First IV byte.
        let n = b.len();
        b[n - 1] = 0x99; // Last ICV byte.
        let v = EspView::parse(&b).unwrap();
        assert_eq!(v.spi(), 0xabcd1234);
        assert_eq!(v.seq(), 77);
        assert_eq!(v.iv()[0], 0x42);
        assert_eq!(v.ciphertext().len(), payload_ct);
        assert_eq!(v.icv()[11], 0x99);
        assert_eq!(v.authenticated_region().len(), total - ESP_ICV_LEN);
    }

    #[test]
    fn short_packet_rejected() {
        let b = vec![0u8; ESP_HDR_LEN + ESP_IV_LEN];
        assert_eq!(EspView::parse(&b).unwrap_err(), ParseError::Truncated);
    }
}
