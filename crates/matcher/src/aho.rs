//! Aho-Corasick multi-pattern string matching (the IDS signature matcher).
//!
//! Built in the "standard approach" the paper cites: a trie with BFS failure
//! links, then converted into a dense DFA (goto + failure collapsed into one
//! 256-way transition table) so the scan loop is one table load per input
//! byte — the form both the CPU and the GPU kernels consume.

/// A match of one pattern in a haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match {
    /// Index of the matched pattern in the pattern set.
    pub pattern: usize,
    /// Byte offset one past the last matched byte.
    pub end: usize,
}

/// A compiled Aho-Corasick automaton in dense DFA form.
#[derive(Debug, Clone)]
pub struct AhoCorasick {
    /// `delta[state * 256 + byte]` = next state.
    delta: Vec<u32>,
    /// Pattern indices that end at each state (flattened).
    out_start: Vec<u32>,
    out_flat: Vec<u32>,
    pattern_lens: Vec<usize>,
}

impl AhoCorasick {
    /// Compiles a pattern set.
    ///
    /// Empty patterns are rejected; duplicates are allowed (each reports its
    /// own index).
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty or contains an empty pattern.
    pub fn new<P: AsRef<[u8]>>(patterns: &[P]) -> AhoCorasick {
        assert!(!patterns.is_empty(), "pattern set must not be empty");
        // 1. Build the trie.
        struct Node {
            children: [u32; 256],
            fail: u32,
            out: Vec<u32>,
        }
        const NONE: u32 = u32::MAX;
        let mut nodes = vec![Node {
            children: [NONE; 256],
            fail: 0,
            out: Vec::new(),
        }];
        for (pi, pat) in patterns.iter().enumerate() {
            let pat = pat.as_ref();
            assert!(!pat.is_empty(), "pattern {pi} is empty");
            let mut cur = 0usize;
            for &b in pat {
                let next = nodes[cur].children[usize::from(b)];
                cur = if next == NONE {
                    nodes.push(Node {
                        children: [NONE; 256],
                        fail: 0,
                        out: Vec::new(),
                    });
                    let id = (nodes.len() - 1) as u32;
                    nodes[cur].children[usize::from(b)] = id;
                    id as usize
                } else {
                    next as usize
                };
            }
            nodes[cur].out.push(pi as u32);
        }
        // 2. BFS failure links; collapse goto+fail into a dense DFA.
        let mut queue = std::collections::VecDeque::new();
        for b in 0..256 {
            let c = nodes[0].children[b];
            if c == NONE {
                nodes[0].children[b] = 0;
            } else {
                nodes[c as usize].fail = 0;
                queue.push_back(c);
            }
        }
        while let Some(u) = queue.pop_front() {
            let ufail = nodes[u as usize].fail;
            // Merge outputs of the failure target (suffix matches).
            let inherited = nodes[ufail as usize].out.clone();
            nodes[u as usize].out.extend(inherited);
            for b in 0..256 {
                let c = nodes[u as usize].children[b];
                let via_fail = nodes[ufail as usize].children[b];
                if c == NONE {
                    nodes[u as usize].children[b] = via_fail;
                } else {
                    nodes[c as usize].fail = via_fail;
                    queue.push_back(c);
                }
            }
        }
        // 3. Flatten.
        let mut delta = Vec::with_capacity(nodes.len() * 256);
        let mut out_start = Vec::with_capacity(nodes.len() + 1);
        let mut out_flat = Vec::new();
        out_start.push(0);
        for node in &nodes {
            delta.extend_from_slice(&node.children);
            out_flat.extend_from_slice(&node.out);
            out_start.push(out_flat.len() as u32);
        }
        AhoCorasick {
            delta,
            out_start,
            out_flat,
            pattern_lens: patterns.iter().map(|p| p.as_ref().len()).collect(),
        }
    }

    /// Number of DFA states.
    pub fn state_count(&self) -> usize {
        self.delta.len() / 256
    }

    /// Number of patterns compiled in.
    pub fn pattern_count(&self) -> usize {
        self.pattern_lens.len()
    }

    /// Advances one DFA step (exposed so the GPU kernel can run the same
    /// automaton byte-by-byte).
    #[inline]
    pub fn step(&self, state: u32, byte: u8) -> u32 {
        self.delta[state as usize * 256 + usize::from(byte)]
    }

    /// `true` if any pattern ends in `state`.
    #[inline]
    pub fn is_match_state(&self, state: u32) -> bool {
        self.out_start[state as usize] != self.out_start[state as usize + 1]
    }

    /// Finds all matches (including overlapping) in `haystack`.
    pub fn find_all(&self, haystack: &[u8]) -> Vec<Match> {
        let mut matches = Vec::new();
        let mut state = 0u32;
        for (i, &b) in haystack.iter().enumerate() {
            state = self.step(state, b);
            let s = self.out_start[state as usize] as usize;
            let e = self.out_start[state as usize + 1] as usize;
            for &pi in &self.out_flat[s..e] {
                matches.push(Match {
                    pattern: pi as usize,
                    end: i + 1,
                });
            }
        }
        matches
    }

    /// Returns the first match, scanning left to right.
    pub fn first_match(&self, haystack: &[u8]) -> Option<Match> {
        let mut state = 0u32;
        for (i, &b) in haystack.iter().enumerate() {
            state = self.step(state, b);
            let s = self.out_start[state as usize] as usize;
            let e = self.out_start[state as usize + 1] as usize;
            if s != e {
                return Some(Match {
                    pattern: self.out_flat[s] as usize,
                    end: i + 1,
                });
            }
        }
        None
    }

    /// `true` if any pattern occurs in `haystack`.
    pub fn is_match(&self, haystack: &[u8]) -> bool {
        self.first_match(haystack).is_some()
    }

    /// Length of pattern `i`.
    pub fn pattern_len(&self, i: usize) -> usize {
        self.pattern_lens[i]
    }
}

/// A naive multi-pattern scan used as a test oracle.
#[cfg(any(test, feature = "test-oracles"))]
pub fn naive_find_all<P: AsRef<[u8]>>(patterns: &[P], haystack: &[u8]) -> Vec<Match> {
    let mut out = Vec::new();
    for i in 0..haystack.len() {
        for (pi, p) in patterns.iter().enumerate() {
            let p = p.as_ref();
            if haystack[i..].starts_with(p) {
                out.push(Match {
                    pattern: pi,
                    end: i + p.len(),
                });
            }
        }
    }
    out.sort_by_key(|m| (m.end, m.pattern));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_he_she_his_hers() {
        let ac = AhoCorasick::new(&["he", "she", "his", "hers"]);
        let mut ms = ac.find_all(b"ushers");
        ms.sort_by_key(|m| (m.end, m.pattern));
        assert_eq!(
            ms,
            vec![
                Match { pattern: 0, end: 4 }, // "he"
                Match { pattern: 1, end: 4 }, // "she"
                Match { pattern: 3, end: 6 }, // "hers"
            ]
        );
    }

    #[test]
    fn matches_agree_with_naive_oracle() {
        let patterns: Vec<&[u8]> = vec![b"abc", b"bca", b"c", b"aa", b"abcabc"];
        let hay = b"aabcabcabca";
        let mut fast = AhoCorasick::new(&patterns).find_all(hay);
        fast.sort_by_key(|m| (m.end, m.pattern));
        assert_eq!(fast, naive_find_all(&patterns, hay));
    }

    #[test]
    fn overlapping_and_nested_patterns() {
        let ac = AhoCorasick::new(&["aaa", "aa", "a"]);
        let ms = ac.find_all(b"aaaa");
        // "a" x4, "aa" x3, "aaa" x2.
        assert_eq!(ms.len(), 9);
    }

    #[test]
    fn binary_patterns() {
        let ac = AhoCorasick::new(&[&[0x00u8, 0xff, 0x00][..], &[0xffu8, 0xff][..]]);
        assert!(ac.is_match(&[1, 2, 0x00, 0xff, 0x00, 3]));
        assert!(ac.is_match(&[0xff, 0xff]));
        assert!(!ac.is_match(&[0x00, 0xfe, 0x00]));
    }

    #[test]
    fn no_match_returns_none() {
        let ac = AhoCorasick::new(&["needle"]);
        assert_eq!(ac.first_match(b"haystack without it"), None);
        assert!(!ac.is_match(b""));
    }

    #[test]
    fn first_match_is_leftmost_by_end() {
        let ac = AhoCorasick::new(&["late", "ate"]);
        let m = ac.first_match(b"plates").unwrap();
        assert_eq!(m.end, 5);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_pattern_set_rejected() {
        let _ = AhoCorasick::new(&Vec::<Vec<u8>>::new());
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn empty_pattern_rejected() {
        let _ = AhoCorasick::new(&["ok", ""]);
    }

    #[test]
    fn state_count_reflects_shared_prefixes() {
        let shared = AhoCorasick::new(&["abcd", "abce"]);
        let disjoint = AhoCorasick::new(&["abcd", "wxyz"]);
        assert!(shared.state_count() < disjoint.state_count());
    }

    #[test]
    fn step_interface_matches_find_all() {
        let ac = AhoCorasick::new(&["ring"]);
        let hay = b"monitoring";
        let mut state = 0u32;
        let mut hit_at = None;
        for (i, &b) in hay.iter().enumerate() {
            state = ac.step(state, b);
            if ac.is_match_state(state) {
                hit_at = Some(i + 1);
            }
        }
        assert_eq!(hit_at, Some(10));
        assert_eq!(ac.find_all(hay).len(), 1);
    }
}
