//! Offload task staging: the datablock engine (§3.3).
//!
//! When a device thread picks up an aggregated offload task, it
//! *preprocesses* the input datablock (gathers the declared byte ranges of
//! every packet into one page-locked buffer), ships it through the GPU shim,
//! and *postprocesses* the output (scatters results back into packets or
//! annotations). The declarative [`DbInput`]/[`DbOutput`] formats let the
//! framework do all buffer management — the safety and optimization
//! arguments of §3.3.

use nba_sim::Time;

use crate::batch::{anno, PacketBatch};
use crate::element::{DbInput, DbOutput, KernelIo, OffloadSpec, Postprocess};
use crate::graph::NodeId;

/// A batch suspended at an offloadable node, en route to a device thread.
#[derive(Debug)]
pub struct OffloadTask {
    /// The offloadable element's node id (same in every worker's replica).
    pub node: NodeId,
    /// The worker that suspended the batch (owns the completion queue).
    pub worker: usize,
    /// The suspended batch.
    pub batch: PacketBatch,
    /// When the batch entered the device command queue — the anchor of the
    /// `enqueue_wait` offload stage (device time in the DES runtime,
    /// run-relative wall time in the live runtime).
    pub enqueued_at: Time,
}

impl OffloadTask {
    /// The batch's current causal span id (the enqueue span, stamped by
    /// the graph when it suspended the batch; 0 with tracing off).
    pub fn span(&self) -> u64 {
        self.batch.banno().get(anno::SPAN_ID)
    }

    /// Re-stamps the batch's causal span (the device thread advances it to
    /// the launch span so the completion links to the launch).
    pub fn set_span(&mut self, span: u64) {
        self.batch.banno_mut().set(anno::SPAN_ID, span);
    }
}

/// A finished task on its way back to the worker.
#[derive(Debug)]
pub struct CompletedTask {
    /// The node to resume from.
    pub node: NodeId,
    /// The worker to resume on.
    pub worker: usize,
    /// The processed batch.
    pub batch: PacketBatch,
    /// Device-side completion time (D2H copy landed).
    pub done_at: Time,
    /// The device failed this task: the batch comes back *unprocessed*
    /// (kernel output discarded or never produced) and the worker must
    /// re-execute the element's CPU path instead of resuming past it.
    pub fallback: bool,
}

impl CompletedTask {
    /// The batch's current causal span id (the launch span when the device
    /// stamped one, else the enqueue span; 0 with tracing off).
    pub fn span(&self) -> u64 {
        self.batch.banno().get(anno::SPAN_ID)
    }
}

/// A gathered input block ready for the GPU shim.
#[derive(Debug)]
pub struct StagedTask {
    /// Staged input (header + offset tables + item bytes).
    pub input: Vec<u8>,
    /// Required output buffer length.
    pub out_len: usize,
    /// Number of data-parallel items (live packets).
    pub items: usize,
    /// Total single-lane kernel nanoseconds (from the element's profile).
    pub lane_ns: f64,
    /// Item payload bytes gathered (drives preprocessing cost).
    pub in_bytes: usize,
}

/// The input byte range of `spec` for a packet of `len` bytes.
fn input_range(spec: &OffloadSpec, len: usize) -> std::ops::Range<usize> {
    match spec.input {
        DbInput::PartialPacket { offset, len: want } => {
            let start = offset.min(len);
            start..(offset + want).min(len)
        }
        DbInput::WholePacket { offset } => offset.min(len)..len,
    }
}

/// Gathers the input datablock over all live packets of `batches`
/// (iteration order: batch order, then ascending slot index — scatter uses
/// the same order).
pub fn stage(spec: &OffloadSpec, batches: &[&PacketBatch]) -> StagedTask {
    let mut segments: Vec<&[u8]> = Vec::new();
    let mut out_lens: Vec<usize> = Vec::new();
    let mut lane_ns = 0.0;
    let mut in_bytes = 0usize;
    for b in batches {
        for i in b.live_indices() {
            let pkt = b.packet(i).expect("live index");
            let data = pkt.data();
            let r = input_range(spec, data.len());
            let seg = &data[r];
            in_bytes += seg.len();
            lane_ns += spec.gpu.item_ns(seg.len());
            out_lens.push(match spec.output {
                DbOutput::InPlace { extra } => seg.len() + extra,
                DbOutput::PerItem { len } => len,
            });
            segments.push(seg);
        }
    }
    let items = segments.len();
    let (input, out_len) = KernelIo::stage(&segments, &out_lens);
    StagedTask {
        input,
        out_len,
        items,
        lane_ns,
        in_bytes,
    }
}

/// Why a kernel output block could not be applied back onto the packets:
/// its length disagrees with the staged layout (a corrupted D2H copy, or a
/// framework bug pairing the wrong output with a task).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScatterError {
    /// The output block is shorter than the staged layout requires.
    ShortOutput {
        /// Bytes the layout requires.
        needed: usize,
        /// Bytes the block actually holds.
        got: usize,
    },
    /// The output block is longer than the staged layout consumes.
    TrailingBytes {
        /// Bytes the layout consumes.
        needed: usize,
        /// Bytes the block actually holds.
        got: usize,
    },
}

impl std::fmt::Display for ScatterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScatterError::ShortOutput { needed, got } => {
                write!(f, "output block too short: need {needed} bytes, got {got}")
            }
            ScatterError::TrailingBytes { needed, got } => {
                write!(f, "output block too long: need {needed} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for ScatterError {}

/// Applies kernel output back onto the packets, per the spec's postprocess
/// mode. `output` must come from running the kernel over [`stage`]'s block.
///
/// The write-back is *atomic*: the whole layout is validated against the
/// output length first, so on `Err` no packet or annotation has been
/// touched and the batches can safely re-execute on the CPU path. Callers
/// on the device path treat `Err` as a task failure (count + fall back);
/// an error *without* injected corruption is a framework bug and should
/// hard-fail in tests.
pub fn scatter(
    spec: &OffloadSpec,
    batches: &mut [PacketBatch],
    output: &[u8],
) -> Result<(), ScatterError> {
    // Pass 1: the exact length this layout consumes. Nothing is written
    // until the block is known to match, so a corrupted copy cannot leave
    // a batch half-scattered.
    let mut needed = 0usize;
    for b in batches.iter() {
        for i in b.live_indices() {
            let pkt_len = b.packet(i).expect("live index").len();
            let r = input_range(spec, pkt_len);
            needed += match spec.output {
                DbOutput::InPlace { extra } => r.len() + extra,
                DbOutput::PerItem { len } => len,
            };
        }
    }
    if needed > output.len() {
        return Err(ScatterError::ShortOutput {
            needed,
            got: output.len(),
        });
    }
    if needed < output.len() {
        return Err(ScatterError::TrailingBytes {
            needed,
            got: output.len(),
        });
    }
    // Pass 2: apply. The slices below cannot fail — pass 1 proved the
    // cursor walk lands exactly on `output.len()`.
    let mut cursor = 0usize;
    for b in batches.iter_mut() {
        let indices: Vec<usize> = b.live_indices().collect();
        for i in indices {
            let pkt_len = b.packet(i).expect("live index").len();
            let r = input_range(spec, pkt_len);
            let out_item_len = match spec.output {
                DbOutput::InPlace { extra } => r.len() + extra,
                DbOutput::PerItem { len } => len,
            };
            let item = &output[cursor..cursor + out_item_len];
            cursor += out_item_len;
            match spec.postprocess {
                Postprocess::WriteBack => {
                    let pkt = b.packet_mut(i).expect("live index");
                    let dst_range = r.start..(r.start + item.len()).min(pkt.len());
                    let n = dst_range.len();
                    pkt.data_mut()[dst_range].copy_from_slice(&item[..n]);
                }
                Postprocess::Annotation(slot) => {
                    let mut v = [0u8; 8];
                    let n = item.len().min(8);
                    v[..n].copy_from_slice(&item[..n]);
                    b.anno_mut(i).set(slot, u64::from_le_bytes(v));
                }
            }
        }
    }
    Ok(())
}

/// Device-to-host bytes the task will copy back (sizing the D2H transfer).
pub fn d2h_bytes(staged: &StagedTask) -> usize {
    staged.out_len
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::anno;
    use crate::element::{DbInput, DbOutput, Kernel, OffloadSpec, Postprocess};
    use nba_io::Packet;
    use nba_sim::GpuProfile;
    use std::sync::Arc;

    fn upper_kernel() -> Kernel {
        Arc::new(|io: KernelIo<'_>| {
            for i in 0..io.items {
                let r = io.item_out_range(i);
                let src: Vec<u8> = io
                    .item_in(i)
                    .iter()
                    .map(|b| b.to_ascii_uppercase())
                    .collect();
                io.output[r].copy_from_slice(&src);
            }
        })
    }

    fn sum_kernel() -> Kernel {
        Arc::new(|io: KernelIo<'_>| {
            for i in 0..io.items {
                let s: u64 = io.item_in(i).iter().map(|&b| u64::from(b)).sum();
                let r = io.item_out_range(i);
                io.output[r].copy_from_slice(&s.to_le_bytes());
            }
        })
    }

    fn batch_with(frames: &[&[u8]]) -> PacketBatch {
        let mut b = PacketBatch::with_capacity(frames.len());
        for f in frames {
            b.push(Packet::from_bytes(f));
        }
        b
    }

    #[test]
    fn whole_packet_write_back_round_trip() {
        let spec = OffloadSpec {
            input: DbInput::WholePacket { offset: 2 },
            output: DbOutput::InPlace { extra: 0 },
            gpu: GpuProfile {
                fixed_ns: 10.0,
                ns_per_byte: 1.0,
            },
            kernel: upper_kernel(),
            heavy: false,
            postprocess: Postprocess::WriteBack,
        };
        let mut b1 = batch_with(&[b"xxhello", b"xxworld"]);
        let b2 = batch_with(&[b"xxfoo"]);
        let mut batches = vec![std::mem::take(&mut b1), b2];
        let refs: Vec<&PacketBatch> = batches.iter().collect();
        let staged = stage(&spec, &refs);
        assert_eq!(staged.items, 3);
        assert_eq!(staged.in_bytes, 5 + 5 + 3);
        assert!((staged.lane_ns - (3.0 * 10.0 + 13.0)).abs() < 1e-9);

        let mut out = vec![0u8; staged.out_len];
        (spec.kernel)(KernelIo::parse(&staged.input, &mut out));
        scatter(&spec, &mut batches, &out).unwrap();
        assert_eq!(batches[0].packet(0).unwrap().data(), b"xxHELLO");
        assert_eq!(batches[0].packet(1).unwrap().data(), b"xxWORLD");
        assert_eq!(batches[1].packet(0).unwrap().data(), b"xxFOO");
    }

    #[test]
    fn partial_packet_annotation_results() {
        let spec = OffloadSpec {
            input: DbInput::PartialPacket { offset: 1, len: 2 },
            output: DbOutput::PerItem { len: 8 },
            gpu: GpuProfile::default(),
            kernel: sum_kernel(),
            heavy: false,
            postprocess: Postprocess::Annotation(anno::IFACE_OUT),
        };
        let mut batches = vec![batch_with(&[&[1u8, 2, 3, 4], &[5u8, 6]])];
        let refs: Vec<&PacketBatch> = batches.iter().collect();
        let staged = stage(&spec, &refs);
        let mut out = vec![0u8; staged.out_len];
        (spec.kernel)(KernelIo::parse(&staged.input, &mut out));
        scatter(&spec, &mut batches, &out).unwrap();
        assert_eq!(batches[0].anno(0).get(anno::IFACE_OUT), 2 + 3);
        assert_eq!(batches[0].anno(1).get(anno::IFACE_OUT), 6);
    }

    #[test]
    fn masked_slots_are_skipped() {
        let spec = OffloadSpec {
            input: DbInput::WholePacket { offset: 0 },
            output: DbOutput::InPlace { extra: 0 },
            gpu: GpuProfile::default(),
            kernel: upper_kernel(),
            heavy: false,
            postprocess: Postprocess::WriteBack,
        };
        let mut b = batch_with(&[b"aa", b"bb", b"cc"]);
        b.mask(1);
        let mut batches = vec![b];
        let refs: Vec<&PacketBatch> = batches.iter().collect();
        let staged = stage(&spec, &refs);
        assert_eq!(staged.items, 2);
        let mut out = vec![0u8; staged.out_len];
        (spec.kernel)(KernelIo::parse(&staged.input, &mut out));
        scatter(&spec, &mut batches, &out).unwrap();
        assert_eq!(batches[0].packet(0).unwrap().data(), b"AA");
        assert_eq!(batches[0].packet(2).unwrap().data(), b"CC");
    }

    #[test]
    fn short_packets_clip_partial_ranges() {
        let spec = OffloadSpec {
            input: DbInput::PartialPacket { offset: 4, len: 8 },
            output: DbOutput::PerItem { len: 8 },
            gpu: GpuProfile::default(),
            kernel: sum_kernel(),
            heavy: false,
            postprocess: Postprocess::Annotation(0),
        };
        // Packet shorter than the offset contributes an empty item.
        let batches = [batch_with(&[&[9u8, 9], &[0u8, 0, 0, 0, 7, 7]])];
        let refs: Vec<&PacketBatch> = batches.iter().collect();
        let staged = stage(&spec, &refs);
        assert_eq!(staged.items, 2);
        let mut out = vec![0u8; staged.out_len];
        (spec.kernel)(KernelIo::parse(&staged.input, &mut out));
        // Item 0 sums nothing, item 1 sums the two 7s.
        assert_eq!(&out[0..8], &0u64.to_le_bytes());
        assert_eq!(&out[8..16], &14u64.to_le_bytes());
    }

    #[test]
    fn scatter_rejects_mismatched_output_without_touching_packets() {
        let spec = OffloadSpec {
            input: DbInput::WholePacket { offset: 0 },
            output: DbOutput::InPlace { extra: 0 },
            gpu: GpuProfile::default(),
            kernel: upper_kernel(),
            heavy: false,
            postprocess: Postprocess::WriteBack,
        };
        let mut batches = vec![batch_with(&[b"hello", b"world"])];
        let refs: Vec<&PacketBatch> = batches.iter().collect();
        let staged = stage(&spec, &refs);
        let mut out = vec![0u8; staged.out_len];
        (spec.kernel)(KernelIo::parse(&staged.input, &mut out));

        // A truncated block (the corrupted-D2H fault) is rejected…
        let err = scatter(&spec, &mut batches, &out[..out.len() - 1]).unwrap_err();
        assert_eq!(err, ScatterError::ShortOutput { needed: 10, got: 9 });
        // …atomically: no packet was half-written.
        assert_eq!(batches[0].packet(0).unwrap().data(), b"hello");
        assert_eq!(batches[0].packet(1).unwrap().data(), b"world");

        // An oversized block is equally rejected.
        let mut long = out.clone();
        long.push(0);
        let err = scatter(&spec, &mut batches, &long).unwrap_err();
        assert_eq!(
            err,
            ScatterError::TrailingBytes {
                needed: 10,
                got: 11
            }
        );
        assert_eq!(batches[0].packet(0).unwrap().data(), b"hello");

        // The well-formed block still applies.
        scatter(&spec, &mut batches, &out).unwrap();
        assert_eq!(batches[0].packet(0).unwrap().data(), b"HELLO");
    }
}
