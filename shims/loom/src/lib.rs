//! In-workspace stand-in for the `loom` permutation-testing model checker.
//!
//! The real `loom` replaces `std::sync` with instrumented types and runs the
//! model body under every legal interleaving of its threads. This shim keeps
//! the API (so `cfg(loom)` model tests compile and run in the offline build
//! environment) but explores stochastically instead of exhaustively: the
//! body runs [`ITERATIONS`] times on real OS threads, relying on scheduler
//! nondeterminism plus the [`thread::yield_now`] calls loom models insert at
//! synchronization points. Swap in the real crate for exhaustive coverage —
//! no test changes needed.

#![forbid(unsafe_code)]

/// Executions per model (the real loom enumerates; the shim samples).
pub const ITERATIONS: usize = 64;

/// Runs `f` repeatedly, failing (panicking) if any execution panics — the
/// same user-visible contract as `loom::model`.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for _ in 0..ITERATIONS {
        f();
    }
}

pub mod thread {
    //! Model-aware threads (plain OS threads in the shim).
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

pub mod sync {
    //! Model-aware synchronization primitives (plain `std::sync` here).
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    pub mod atomic {
        //! Model-aware atomics (plain `std::sync::atomic` here).
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }
}

pub mod hint {
    //! Model-aware spin hints.
    pub use std::hint::spin_loop;
}
