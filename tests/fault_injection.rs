//! Fault-tolerant offload: the degradation ladder end to end.
//!
//! These tests drive the seeded fault injector through the DES runtime and
//! assert the ladder's invariants: CPU fallback preserves every in-flight
//! packet bit-identically, fault runs are deterministic under a fixed seed,
//! device death at the midpoint of a run degrades throughput but never
//! correctness, and clean runs report zero fault activity. Live-mode panic
//! containment is covered in `live_runtime.rs`.

use nba::apps::{pipelines, AppConfig};
use nba::core::fault::{FaultConfig, FaultPlan};
use nba::core::lb;
use nba::core::runtime::{des, traffic_per_port, RunReport, RuntimeConfig};
use nba::io::{IpVersion, PayloadFill, SizeDist, TrafficConfig};
use nba::sim::Time;

fn app_for(cfg: &RuntimeConfig) -> AppConfig {
    AppConfig {
        ports: cfg.topology.ports.len() as u16,
        v4_routes: 4096,
        v6_routes: 1024,
        ids_literals: 64,
        ids_regexes: 8,
        ..AppConfig::default()
    }
}

fn light_traffic(cfg: &RuntimeConfig, gbps: f64, v6: bool) -> Vec<TrafficConfig> {
    traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: gbps,
            size: SizeDist::Fixed(128),
            ip_version: if v6 { IpVersion::V6 } else { IpVersion::V4 },
            ..TrafficConfig::default()
        },
    )
}

/// Every offload attempt fails with a retryable transient error: retries
/// exhaust, every task falls back to the CPU path.
fn always_transient() -> FaultConfig {
    FaultConfig {
        plan: FaultPlan {
            seed: 7,
            transient: 1.0,
            ..FaultPlan::default()
        },
        ..FaultConfig::default()
    }
}

/// The four apps as (name, builder, uses-v6-traffic, light-load-Gbps)
/// rows. The per-app rates keep full computation comfortably below CPU
/// saturation on the small test topology, so fallback runs (which burn
/// extra cycles on retries) stay in the no-drop regime.
fn all_apps(app: &AppConfig) -> Vec<(&'static str, nba::core::PipelineBuilder, bool, f64)> {
    vec![
        ("ipv4", pipelines::ipv4_router(app), false, 1.0),
        ("ipv6", pipelines::ipv6_router(app), true, 1.0),
        ("ipsec", pipelines::ipsec_gateway(app), false, 0.5),
        ("ids", pipelines::ids(app).0, false, 0.25),
    ]
}

fn assert_parity(name: &str, clean: &RunReport, faulted: &RunReport) {
    // The fallback path re-runs the offloadable element's CPU closure on
    // the same packets, so the routed/encrypted/matched packet counts must
    // agree with a clean CPU-only run up to window-edge timing effects.
    let diff = clean.window.tx_packets.abs_diff(faulted.window.tx_packets);
    assert!(
        diff * 10 <= clean.window.tx_packets,
        "{name}: cpu {} vs fallback {}",
        clean.window.tx_packets,
        faulted.window.tx_packets
    );
    let mean_clean = clean.window.tx_frame_bits / clean.window.tx_packets.max(1);
    let mean_faulted = faulted.window.tx_frame_bits / faulted.window.tx_packets.max(1);
    assert_eq!(
        mean_clean, mean_faulted,
        "{name}: per-packet output bits differ — fallback is not bit-identical"
    );
}

#[test]
fn cpu_fallback_matches_cpu_only_for_all_apps() {
    let clean_cfg = RuntimeConfig::test_default();
    let fault_cfg = RuntimeConfig {
        fault: always_transient(),
        ..RuntimeConfig::test_default()
    };
    let app = app_for(&clean_cfg);
    for (name, pipeline, v6, gbps) in all_apps(&app) {
        let clean = des::run(
            &clean_cfg,
            &pipeline,
            &lb::shared(Box::new(lb::CpuOnly)),
            &light_traffic(&clean_cfg, gbps, v6),
        );
        let faulted = des::run(
            &fault_cfg,
            &pipeline,
            &lb::shared(Box::new(lb::GpuOnly)),
            &light_traffic(&fault_cfg, gbps, v6),
        );
        assert!(faulted.tx_packets > 100, "{name}: too little traffic");
        // Nothing ever completed on the device…
        assert_eq!(
            faulted.window.gpu_processed, 0,
            "{name}: a task slipped past the injector"
        );
        // …yet no packet was lost: everything fell back to the CPU path.
        let f = &faulted.faults.snapshot;
        assert!(f.injected_transient > 0, "{name}: nothing injected");
        assert!(f.retried > 0, "{name}: no retries before fallback");
        assert!(f.fell_back_packets > 0, "{name}: no fallback recorded");
        assert_eq!(f.dropped_packets, 0, "{name}: fallback lost packets");
        assert_parity(name, &clean, &faulted);
    }
}

#[test]
fn ids_fallback_detects_identically() {
    let cfg = RuntimeConfig::test_default();
    let fault_cfg = RuntimeConfig {
        fault: always_transient(),
        ..RuntimeConfig::test_default()
    };
    let app = app_for(&cfg);
    let traffic = traffic_per_port(
        &cfg.topology,
        &TrafficConfig {
            offered_gbps: 0.5,
            size: SizeDist::Fixed(256),
            payload: PayloadFill::Plant {
                needle: b"EVILPATTERN".to_vec(),
                every: 5,
            },
            ..TrafficConfig::default()
        },
    );
    let (p_cpu, a_cpu) = pipelines::ids(&app);
    let (p_fb, a_fb) = pipelines::ids(&app);
    des::run(&cfg, &p_cpu, &lb::shared(Box::new(lb::CpuOnly)), &traffic);
    let faulted = des::run(
        &fault_cfg,
        &p_fb,
        &lb::shared(Box::new(lb::GpuOnly)),
        &traffic,
    );
    assert!(faulted.faults.snapshot.fell_back_packets > 0);
    let lit_cpu = a_cpu
        .literal_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    let lit_fb = a_fb.literal_hits.load(std::sync::atomic::Ordering::Relaxed);
    assert!(
        lit_cpu > 0 && lit_fb > 0,
        "cpu {lit_cpu} vs fallback {lit_fb}"
    );
    let diff = lit_cpu.abs_diff(lit_fb);
    assert!(diff * 10 <= lit_cpu, "cpu {lit_cpu} vs fallback {lit_fb}");
}

#[test]
fn fault_runs_are_deterministic_under_a_fixed_seed() {
    let cfg = RuntimeConfig {
        fault: FaultConfig {
            plan: FaultPlan {
                seed: 7,
                timeout: 0.1,
                transient: 0.3,
                corrupt: 0.05,
                ..FaultPlan::default()
            },
            ..FaultConfig::default()
        },
        ..RuntimeConfig::test_default()
    };
    let app = app_for(&cfg);
    let run = || {
        des::run(
            &cfg,
            &pipelines::ipv4_router(&app),
            &lb::shared(Box::new(lb::GpuOnly)),
            &light_traffic(&cfg, 2.0, false),
        )
    };
    let a = run();
    let b = run();
    assert!(a.faults.snapshot.injected() > 0, "plan injected nothing");
    assert_eq!(a.tx_packets, b.tx_packets);
    assert_eq!(a.window.tx_frame_bits, b.window.tx_frame_bits);
    assert_eq!(a.faults.snapshot, b.faults.snapshot);
    assert_eq!(a.faults.quarantines, b.faults.quarantines);
    assert_eq!(a.final_w, b.final_w);
    assert_eq!(a.latency.count(), b.latency.count());
    // A different seed draws a different fault stream.
    let cfg2 = RuntimeConfig {
        fault: FaultConfig {
            plan: FaultPlan {
                seed: 8,
                ..cfg.fault.plan.clone()
            },
            ..cfg.fault.clone()
        },
        ..cfg.clone()
    };
    let c = des::run(
        &cfg2,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::GpuOnly)),
        &light_traffic(&cfg2, 2.0, false),
    );
    assert_ne!(a.faults.snapshot, c.faults.snapshot);
}

#[test]
fn device_death_at_midpoint_loses_no_packets_in_any_app() {
    // The device dies mid-run and revives near the end; every app must
    // complete, with every in-flight packet recovered on the CPU path.
    let cfg = RuntimeConfig {
        measure: Time::from_ms(18),
        fault: FaultConfig {
            plan: FaultPlan {
                seed: 11,
                die_at: Some(Time::from_ms(8)),
                revive_at: Some(Time::from_ms(14)),
                ..FaultPlan::default()
            },
            quarantine: Time::from_ms(2),
            ..FaultConfig::default()
        },
        ..RuntimeConfig::test_default()
    };
    let app = app_for(&cfg);
    for (name, pipeline, v6, gbps) in all_apps(&app) {
        let r = des::run(
            &cfg,
            &pipeline,
            &lb::shared(Box::new(lb::GpuOnly)),
            &light_traffic(&cfg, gbps, v6),
        );
        let f = &r.faults.snapshot;
        assert!(r.tx_packets > 100, "{name}: did not complete under death");
        assert!(f.injected_dead > 0, "{name}: the device never died");
        assert!(f.fell_back_packets > 0, "{name}: no CPU recovery");
        assert_eq!(f.dropped_packets, 0, "{name}: mid-pipeline packet loss");
        assert!(
            f.quarantine_entered >= 1,
            "{name}: breaker never tripped: {f:?}"
        );
        assert!(
            f.quarantine_exited >= 1,
            "{name}: revived device never re-admitted: {f:?}"
        );
        assert!(!r.faults.quarantines.is_empty(), "{name}: no intervals");
    }
}

#[test]
fn adaptive_balancer_fails_over_and_reconverges_on_death() {
    // Same death drill under the adaptive balancer: the breaker's health
    // signal must drive `w` toward zero during the outage and let the
    // hill-climb resume after re-admission (the w-trajectory story the
    // bench artifacts tell).
    let cfg = RuntimeConfig {
        measure: Time::from_ms(30),
        fault: FaultConfig {
            plan: FaultPlan {
                seed: 11,
                die_at: Some(Time::from_ms(10)),
                revive_at: Some(Time::from_ms(18)),
                ..FaultPlan::default()
            },
            quarantine: Time::from_ms(2),
            ..FaultConfig::default()
        },
        ..RuntimeConfig::test_default()
    };
    let app = app_for(&cfg);
    let balancer = lb::shared(Box::new(lb::Adaptive::new(lb::AlbConfig {
        update_interval: Time::from_ms(1),
        avg_window: 2,
        min_wait: 0,
        max_wait: 2,
        initial_w: 0.5,
        ..lb::AlbConfig::default()
    })));
    let r = des::run(
        &cfg,
        &pipelines::ipv4_router(&app),
        &balancer,
        &light_traffic(&cfg, 2.0, false),
    );
    let f = &r.faults.snapshot;
    assert!(f.quarantine_entered >= 1, "breaker never tripped: {f:?}");
    assert!(f.quarantine_exited >= 1, "device never re-admitted: {f:?}");
    assert_eq!(f.dropped_packets, 0);
    // The w-trajectory tells the fail-over story: it dips markedly below
    // the pre-death operating point while the device is out, then climbs
    // back once the breaker re-admits it.
    let (death, revive) = (Time::from_ms(10), Time::from_ms(18));
    let w_of = |lo: Time, hi: Time, init: f64, pick: fn(f64, f64) -> f64| {
        r.samples
            .iter()
            .filter(|s| s.t > lo && s.t <= hi)
            .map(|s| s.offload_fraction)
            .fold(init, pick)
    };
    let horizon = Time::from_ms(60);
    let pre_peak = w_of(Time::ZERO, death, 0.0, f64::max);
    let dip = w_of(death, revive + Time::from_ms(4), 1.0, f64::min);
    let after_peak = w_of(revive, horizon, 0.0, f64::max);
    assert!(
        dip <= pre_peak - 0.15,
        "w never fell during the outage: pre {pre_peak} dip {dip}"
    );
    assert!(
        after_peak >= dip + 0.08,
        "w never re-climbed after re-admission: dip {dip} after {after_peak}"
    );
}

#[test]
fn clean_runs_report_zero_fault_activity() {
    let cfg = RuntimeConfig::test_default();
    let app = app_for(&cfg);
    let r = des::run(
        &cfg,
        &pipelines::ipv4_router(&app),
        &lb::shared(Box::new(lb::GpuOnly)),
        &light_traffic(&cfg, 2.0, false),
    );
    assert!(r.faults.snapshot.is_clean(), "{:?}", r.faults.snapshot);
    assert!(r.faults.quarantines.is_empty());
    assert!(r.window.gpu_processed > 0, "offloading should be clean");
}
