//! Criterion micro-benchmarks of the substrates: crypto, matching, lookup,
//! checksums, RSS hashing, and batch operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use nba_apps::ipv4::RoutingTableV4;
use nba_apps::ipv6::RoutingTableV6;
use nba_crypto::{Aes128Ctr, HmacSha1, Sha1};
use nba_io::checksum;
use nba_io::toeplitz::Toeplitz;
use nba_matcher::{AhoCorasick, Regex};

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    for size in [64usize, 1024] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        let ctr = Aes128Ctr::new(&[7u8; 16]);
        g.bench_with_input(BenchmarkId::new("aes128-ctr", size), &data, |b, d| {
            let mut buf = d.clone();
            b.iter(|| ctr.apply_keystream(&[9u8; 16], &mut buf));
        });
        g.bench_with_input(BenchmarkId::new("sha1", size), &data, |b, d| {
            b.iter(|| Sha1::digest(d));
        });
        let mac = HmacSha1::new(b"benchkey");
        g.bench_with_input(BenchmarkId::new("hmac-sha1", size), &data, |b, d| {
            b.iter(|| mac.mac_truncated_96(d));
        });
    }
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    let rules = nba_apps::ids::RuleSet::synthetic(3, 256, 8);
    let mut rng = SmallRng::seed_from_u64(1);
    for size in [64usize, 1024] {
        let hay: Vec<u8> = (0..size).map(|_| b'a' + rng.gen::<u8>() % 26).collect();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("aho-corasick", size), &hay, |b, h| {
            b.iter(|| rules.ac().first_match(h));
        });
    }
    let ac = AhoCorasick::new(&["needle", "haystack", "pattern"]);
    g.bench_function("aho-corasick/small-set-256B", |b| {
        let hay = vec![b'x'; 256];
        b.iter(|| ac.is_match(&hay));
    });
    let re = Regex::new(r"GET /[\w/]+\.php\?id=\d+").unwrap();
    g.bench_function("regex-dfa/http-256B", |b| {
        let hay = b"GET /a/b/c.php?id=12345 HTTP/1.1".repeat(8);
        b.iter(|| re.is_match(&hay));
    });
    g.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut g = c.benchmark_group("lookup");
    let v4 = RoutingTableV4::random(5, 65_536, 32);
    let v6 = RoutingTableV6::random(5, 16_384, 32);
    let mut rng = SmallRng::seed_from_u64(2);
    let dsts4: Vec<u32> = (0..1024).map(|_| rng.gen()).collect();
    let dsts6: Vec<u128> = (0..1024)
        .map(|_| 0x2001_0db8u128 << 96 | u128::from(rng.gen::<u64>()))
        .collect();
    g.throughput(Throughput::Elements(1024));
    g.bench_function("dir-24-8/ipv4", |b| {
        b.iter(|| dsts4.iter().filter_map(|&d| v4.lookup(d)).count())
    });
    g.bench_function("binary-search/ipv6", |b| {
        b.iter(|| dsts6.iter().filter_map(|&d| v6.lookup(d)).count())
    });
    g.finish();
}

fn bench_io(c: &mut Criterion) {
    let mut g = c.benchmark_group("io");
    let data = vec![0x5au8; 1500];
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("internet-checksum/1500B", |b| {
        b.iter(|| checksum::internet_checksum(&data))
    });
    let t = Toeplitz::default();
    g.bench_function("toeplitz/ipv4-4tuple", |b| {
        b.iter(|| t.hash_ipv4_l4(0x0a000001, 0xc0a80001, 1234, 53))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_matching,
    bench_lookup,
    bench_io
);
criterion_main!(benches);
