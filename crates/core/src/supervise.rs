//! Worker supervision and overload control for the sharded live runtime.
//!
//! PR 4's circuit breaker made the *device* path self-healing; this module
//! does the same for the *worker* plane. Each shard publishes a heartbeat
//! ([`WorkerHealth`]: a progress counter plus liveness flags); a supervisor
//! ticks a watchdog and drives a per-shard state machine
//! ([`ShardMonitor`]) through
//!
//! ```text
//!              no progress + backlog          T stalled windows / crash
//!   Healthy ────────────────────────▶ Suspect ────────────────────────▶ Dead
//!      ▲                                │                                │
//!      │ progress                       │ progress                       │ respawn / resumed
//!      │                                ▼                                ▼
//!      └───────────────────────── (back to Healthy) ◀──────────── Recovering
//! ```
//!
//! mirroring the Closed → Open → HalfOpen shape of
//! [`crate::fault::CircuitBreaker`]. On **Dead** the supervisor re-steers
//! the shard's RSS buckets onto survivors through the shared
//! [`nba_io::RssTable`]; on **Recovering** a respawned worker (fresh graph /
//! pool / telemetry replicas) re-acquires them. Every transition is recorded
//! in a [`SupervisorLog`] — replayable JSONL in the same bit-exact style as
//! [`crate::audit::DecisionLog`] — and every lost or shed packet lands in a
//! [`HealthStats`] counter so total loss always reconciles against a clean
//! run.
//!
//! The overload half is [`ShedConfig`]/[`Shedder`]: when ring occupancy or
//! the SLO burn-rate crosses a threshold, IO threads shed load by policy
//! (drop-tail, priority-aware by traffic class, or probabilistic early
//! drop) instead of blocking, with every shed accounted.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};

use nba_sim::Time;

use crate::json::{self, Value};

/// The supervision state of one worker shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WorkerState {
    /// Making progress (or idle with an empty ring).
    Healthy = 0,
    /// One watchdog window with backlog but no progress.
    Suspect = 1,
    /// Declared gone: crashed, or stalled past the window budget. Its RSS
    /// buckets are re-steered to survivors.
    Dead = 2,
    /// A replacement was spawned (or a presumed-dead worker resumed); it
    /// becomes Healthy again at its first observed progress.
    Recovering = 3,
}

impl WorkerState {
    /// Stable wire/metric name.
    pub fn as_str(self) -> &'static str {
        match self {
            WorkerState::Healthy => "healthy",
            WorkerState::Suspect => "suspect",
            WorkerState::Dead => "dead",
            WorkerState::Recovering => "recovering",
        }
    }

    /// Inverse of [`WorkerState::as_str`].
    pub fn parse(s: &str) -> Result<WorkerState, String> {
        match s {
            "healthy" => Ok(WorkerState::Healthy),
            "suspect" => Ok(WorkerState::Suspect),
            "dead" => Ok(WorkerState::Dead),
            "recovering" => Ok(WorkerState::Recovering),
            other => Err(format!("unknown worker state `{other}`")),
        }
    }

    /// The numeric gauge value exported to `/metrics`.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`WorkerState::as_u8`].
    pub fn from_u8(v: u8) -> WorkerState {
        match v {
            1 => WorkerState::Suspect,
            2 => WorkerState::Dead,
            3 => WorkerState::Recovering,
            _ => WorkerState::Healthy,
        }
    }
}

/// Why a transition fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransitionReason {
    /// No progress across a watchdog window while backlog waited.
    Stall,
    /// The worker's containment signal: its thread exited uncleanly.
    Crash,
    /// Progress was observed again.
    Progress,
    /// The supervisor spawned a replacement worker.
    Respawn,
    /// A presumed-dead (stalled) worker started consuming again.
    Resumed,
}

impl TransitionReason {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            TransitionReason::Stall => "stall",
            TransitionReason::Crash => "crash",
            TransitionReason::Progress => "progress",
            TransitionReason::Respawn => "respawn",
            TransitionReason::Resumed => "resumed",
        }
    }

    /// Inverse of [`TransitionReason::as_str`].
    pub fn parse(s: &str) -> Result<TransitionReason, String> {
        match s {
            "stall" => Ok(TransitionReason::Stall),
            "crash" => Ok(TransitionReason::Crash),
            "progress" => Ok(TransitionReason::Progress),
            "respawn" => Ok(TransitionReason::Respawn),
            "resumed" => Ok(TransitionReason::Resumed),
            other => Err(format!("unknown transition reason `{other}`")),
        }
    }
}

/// One state-machine edge, as returned by [`ShardMonitor::observe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// State before.
    pub from: WorkerState,
    /// State after.
    pub to: WorkerState,
    /// Why.
    pub reason: TransitionReason,
}

/// Is `(from → to, reason)` an edge the state machine can produce? The
/// replay validator rejects logs that claim impossible transitions.
pub fn transition_is_legal(t: Transition) -> bool {
    use TransitionReason as R;
    use WorkerState as S;
    matches!(
        (t.from, t.to, t.reason),
        (S::Healthy, S::Suspect, R::Stall)
            | (S::Healthy, S::Dead, R::Stall | R::Crash)
            | (S::Suspect, S::Dead, R::Stall | R::Crash)
            | (S::Suspect, S::Healthy, R::Progress)
            | (S::Dead, S::Recovering, R::Respawn | R::Resumed)
            | (S::Recovering, S::Healthy, R::Progress)
            | (S::Recovering, S::Dead, R::Stall | R::Crash)
    )
}

/// Supervision knobs, grouped under [`crate::fault::FaultConfig`] so both
/// runtimes inherit them.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Watchdog tick: how often each shard's heartbeat is examined.
    pub check_interval: Time,
    /// Consecutive no-progress windows (with backlog) before a shard is
    /// declared Dead. The first such window already makes it Suspect.
    pub stall_windows: u32,
    /// Respawn a crashed worker (fresh graph/pool/telemetry replicas) and
    /// hand its buckets back once it progresses. Stalled-but-alive workers
    /// are never respawned — they re-acquire their buckets on resume.
    pub respawn: bool,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            check_interval: Time::from_us(500),
            stall_windows: 4,
            respawn: true,
        }
    }
}

impl SupervisorConfig {
    /// The worst-case detection budget for a crash/stall: every fault is
    /// seen within this many watchdog ticks.
    pub fn detection_budget(&self) -> Time {
        Time::from_secs_f64(
            self.check_interval.as_secs_f64() * f64::from(self.stall_windows.max(1) + 1),
        )
    }
}

/// What the supervisor reads from a shard each watchdog tick.
#[derive(Debug, Clone, Copy)]
pub struct Observation {
    /// The shard's monotone progress counter (packets pulled + completions).
    pub progress: u64,
    /// False once the worker thread exited without finishing its drain.
    pub alive: bool,
    /// Items waiting in the shard's RX rings (no backlog = idle, not stall).
    pub backlog: u64,
}

/// The pure per-shard watchdog state machine (deterministically testable;
/// the supervisor thread and the DES supervisor entity both drive one of
/// these per shard).
#[derive(Debug, Clone)]
pub struct ShardMonitor {
    state: WorkerState,
    stall_windows: u32,
    last_progress: Option<u64>,
    stalled: u32,
}

impl ShardMonitor {
    /// A monitor starting Healthy.
    pub fn new(stall_windows: u32) -> ShardMonitor {
        ShardMonitor {
            state: WorkerState::Healthy,
            stall_windows: stall_windows.max(2),
            last_progress: None,
            stalled: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> WorkerState {
        self.state
    }

    /// Feeds one watchdog observation; returns the transition it caused,
    /// if any.
    pub fn observe(&mut self, obs: Observation) -> Option<Transition> {
        use WorkerState as S;
        if !obs.alive {
            self.stalled = 0;
            return self.force(S::Dead, TransitionReason::Crash);
        }
        // The first sighting only establishes the baseline — a stall needs
        // two looks at the same counter.
        let Some(last) = self.last_progress else {
            self.last_progress = Some(obs.progress);
            return None;
        };
        let progressed = obs.progress > last;
        self.last_progress = Some(obs.progress);
        if progressed {
            self.stalled = 0;
            return match self.state {
                S::Suspect | S::Recovering => self.force(S::Healthy, TransitionReason::Progress),
                // A presumed-dead shard that moves again was stalled, not
                // crashed: it holds its rings and walks back through
                // Recovering (where its buckets are restored).
                S::Dead => self.force(S::Recovering, TransitionReason::Resumed),
                S::Healthy => None,
            };
        }
        if obs.backlog == 0 || matches!(self.state, S::Dead) {
            return None;
        }
        self.stalled += 1;
        if self.stalled >= self.stall_windows {
            self.force(S::Dead, TransitionReason::Stall)
        } else if matches!(self.state, S::Healthy) {
            self.force(S::Suspect, TransitionReason::Stall)
        } else {
            None
        }
    }

    /// Externally-driven transition (e.g. the supervisor respawned the
    /// shard). No-op when already in `to`.
    pub fn force(&mut self, to: WorkerState, reason: TransitionReason) -> Option<Transition> {
        if self.state == to {
            return None;
        }
        let t = Transition {
            from: self.state,
            to,
            reason,
        };
        self.state = to;
        t.into()
    }
}

/// The heartbeat one worker shard publishes (all relaxed atomics — gauges,
/// not synchronization).
#[derive(Debug, Default)]
pub struct WorkerHealth {
    /// Monotone progress counter: packets pulled from RX plus completions
    /// resumed. Bumped by the worker, read by the watchdog.
    pub progress: AtomicU64,
    /// Cleared when the worker thread exits *without* completing its drain
    /// (crash containment or a scheduled kill drill).
    pub alive: AtomicBool,
    /// Set on a graceful end-of-run drain; the supervisor then ignores the
    /// shard (a finished worker is not a dead one).
    pub done: AtomicBool,
    /// Mirror of the supervisor's [`WorkerState`] for observers
    /// (`/metrics`, reporter).
    pub state: AtomicU8,
    /// Watchdog epoch: bumped by the supervisor each time it examines this
    /// shard, so observers can tell the watchdog itself is alive.
    pub epoch: AtomicU64,
}

impl WorkerHealth {
    /// A fresh Healthy heartbeat.
    pub fn new() -> WorkerHealth {
        WorkerHealth {
            alive: AtomicBool::new(true),
            ..WorkerHealth::default()
        }
    }

    /// Worker-side: record `n` units of progress.
    pub fn advance(&self, n: u64) {
        self.progress.fetch_add(n, Ordering::Relaxed);
    }

    /// Worker-side: mark a graceful end-of-run exit.
    pub fn finish(&self) {
        self.done.store(true, Ordering::Release);
        self.alive.store(false, Ordering::Release);
    }

    /// Worker-side: mark an unclean exit (the containment signal).
    pub fn crash(&self) {
        self.alive.store(false, Ordering::Release);
    }

    /// Supervisor-side: re-arm after a respawn.
    pub fn rearm(&self) {
        self.alive.store(true, Ordering::Release);
        self.done.store(false, Ordering::Release);
    }

    /// The supervisor state observers currently see.
    pub fn observed_state(&self) -> WorkerState {
        WorkerState::from_u8(self.state.load(Ordering::Relaxed))
    }
}

/// Shared loss/shed/recovery accounting (relaxed atomics, mirroring
/// [`crate::fault::FaultStats`]). Every packet the self-healing plane gives
/// up on is counted exactly once, so
/// `clean_tx - drill_tx == shed + lost_in_ring + lost_in_flight` holds.
#[derive(Debug, Default)]
pub struct HealthStats {
    /// Packets shed by the drop-tail policy.
    pub shed_drop_tail: AtomicU64,
    /// Packets shed by the priority policy.
    pub shed_priority: AtomicU64,
    /// Packets shed by the probabilistic (early-drop) policy.
    pub shed_probabilistic: AtomicU64,
    /// Packets abandoned in a dead shard's RX rings.
    pub lost_in_ring: AtomicU64,
    /// Packets in offload completions no worker ever resumed.
    pub lost_in_flight: AtomicU64,
    /// RSS re-steer operations (bucket remaps away from a dead shard).
    pub resteers: AtomicU64,
    /// Buckets moved by those re-steers.
    pub buckets_moved: AtomicU64,
    /// Replacement workers spawned.
    pub respawns: AtomicU64,
    /// Ring-disconnect post-mortems raised by IO threads.
    pub ring_disconnects: AtomicU64,
}

impl HealthStats {
    /// Relaxed add.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// A consistent-enough copy of all counters.
    pub fn snapshot(&self) -> HealthSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        HealthSnapshot {
            shed_drop_tail: g(&self.shed_drop_tail),
            shed_priority: g(&self.shed_priority),
            shed_probabilistic: g(&self.shed_probabilistic),
            lost_in_ring: g(&self.lost_in_ring),
            lost_in_flight: g(&self.lost_in_flight),
            resteers: g(&self.resteers),
            buckets_moved: g(&self.buckets_moved),
            respawns: g(&self.respawns),
            ring_disconnects: g(&self.ring_disconnects),
        }
    }
}

/// A point-in-time copy of [`HealthStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Packets shed by the drop-tail policy.
    pub shed_drop_tail: u64,
    /// Packets shed by the priority policy.
    pub shed_priority: u64,
    /// Packets shed by the probabilistic policy.
    pub shed_probabilistic: u64,
    /// Packets abandoned in dead shards' RX rings.
    pub lost_in_ring: u64,
    /// Packets in offload completions no worker ever resumed.
    pub lost_in_flight: u64,
    /// RSS re-steer operations.
    pub resteers: u64,
    /// Buckets moved by those re-steers.
    pub buckets_moved: u64,
    /// Replacement workers spawned.
    pub respawns: u64,
    /// Ring-disconnect post-mortems raised.
    pub ring_disconnects: u64,
}

impl HealthSnapshot {
    /// Packets shed, all policies.
    pub fn shed_total(&self) -> u64 {
        self.shed_drop_tail + self.shed_priority + self.shed_probabilistic
    }

    /// Every packet the self-healing plane accounts as given up.
    pub fn total_lost(&self) -> u64 {
        self.shed_total() + self.lost_in_ring + self.lost_in_flight
    }

    /// True when nothing was lost, shed, or re-steered.
    pub fn is_clean(&self) -> bool {
        *self == HealthSnapshot::default()
    }
}

/// The supervision section of a run report.
#[derive(Debug, Clone, Default)]
pub struct HealthReport {
    /// Final supervision state per worker shard (empty when the run had no
    /// supervisor, e.g. a plain DES run without worker drills).
    pub states: Vec<WorkerState>,
    /// Replayable transition log.
    pub log: SupervisorLog,
    /// Loss/shed/recovery counters.
    pub stats: HealthSnapshot,
}

impl HealthReport {
    /// True when no supervision event fired and nothing was lost.
    pub fn is_clean(&self) -> bool {
        self.log.events.is_empty() && self.stats.is_clean()
    }
}

/// One recorded supervision transition. Integers only — bit-exact JSONL
/// round-trips for free (same convention as
/// [`crate::audit::DecisionRecord`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisionEvent {
    /// Sequence number within the log (0-based, dense).
    pub seq: u64,
    /// Time since run start, in nanoseconds (virtual in DES, wall in live).
    pub t_ns: u64,
    /// Worker shard the transition applies to.
    pub worker: u32,
    /// State before.
    pub from: WorkerState,
    /// State after.
    pub to: WorkerState,
    /// Why.
    pub reason: TransitionReason,
    /// The shard's progress counter at the transition.
    pub progress: u64,
    /// The shard's RX backlog at the transition.
    pub backlog: u64,
    /// RSS buckets moved by this transition (re-steer on Dead, restore on
    /// recovery; zero otherwise).
    pub buckets_moved: u32,
}

impl SupervisionEvent {
    fn to_json_line(self) -> String {
        format!(
            "{{\"seq\":{},\"t_ns\":{},\"worker\":{},\"from\":\"{}\",\"to\":\"{}\",\
             \"reason\":\"{}\",\"progress\":{},\"backlog\":{},\"buckets_moved\":{}}}",
            self.seq,
            self.t_ns,
            self.worker,
            self.from.as_str(),
            self.to.as_str(),
            self.reason.as_str(),
            self.progress,
            self.backlog,
            self.buckets_moved,
        )
    }

    fn from_json(v: &Value) -> Result<SupervisionEvent, String> {
        Ok(SupervisionEvent {
            seq: u64_field(v, "seq")?,
            t_ns: u64_field(v, "t_ns")?,
            worker: u64_field(v, "worker")? as u32,
            from: WorkerState::parse(str_field(v, "from")?)?,
            to: WorkerState::parse(str_field(v, "to")?)?,
            reason: TransitionReason::parse(str_field(v, "reason")?)?,
            progress: u64_field(v, "progress")?,
            backlog: u64_field(v, "backlog")?,
            buckets_moved: u64_field(v, "buckets_moved")? as u32,
        })
    }
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        other => Err(format!("field `{key}`: expected integer, got {other:?}")),
    }
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    match v.get(key) {
        Some(Value::Str(s)) => Ok(s),
        other => Err(format!("field `{key}`: expected string, got {other:?}")),
    }
}

/// The supervisor's transition log: an append-only record of every
/// quarantine / re-steer / recovery edge, replayable offline.
#[derive(Debug, Clone, Default)]
pub struct SupervisorLog {
    /// The transitions, in the order they fired.
    pub events: Vec<SupervisionEvent>,
}

impl SupervisorLog {
    /// An empty log.
    pub fn new() -> SupervisorLog {
        SupervisorLog::default()
    }

    /// Appends a transition, assigning the next sequence number.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        t_ns: u64,
        worker: u32,
        t: Transition,
        progress: u64,
        backlog: u64,
        buckets_moved: u32,
    ) {
        self.events.push(SupervisionEvent {
            seq: self.events.len() as u64,
            t_ns,
            worker,
            from: t.from,
            to: t.to,
            reason: t.reason,
            progress,
            backlog,
            buckets_moved,
        });
    }

    /// Bit-exact equality (all-integer records, so this is plain equality).
    pub fn bit_eq(&self, other: &SupervisorLog) -> bool {
        self.events == other.events
    }

    /// Serializes to JSON lines (one event per line, header first).
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"schema\":\"nba-supervisor-log\",\"version\":1,\"events\":{}}}\n",
            self.events.len()
        );
        for e in &self.events {
            out.push_str(&e.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Parses [`SupervisorLog::to_jsonl`] output.
    pub fn from_jsonl(s: &str) -> Result<SupervisorLog, String> {
        let mut lines = s.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty supervisor log")?;
        let h = json::parse(header).map_err(|e| format!("bad header: {e:?}"))?;
        if str_field(&h, "schema")? != "nba-supervisor-log" {
            return Err("not a supervisor log".into());
        }
        let declared = u64_field(&h, "events")?;
        let mut events = Vec::new();
        for line in lines {
            let v = json::parse(line).map_err(|e| format!("bad event: {e:?}"))?;
            events.push(SupervisionEvent::from_json(&v)?);
        }
        if events.len() as u64 != declared {
            return Err(format!(
                "header declares {declared} events, found {}",
                events.len()
            ));
        }
        Ok(SupervisorLog { events })
    }

    /// Replays the log against the state machine: verifies the sequence
    /// numbers are dense, every per-worker chain starts at Healthy and is
    /// contiguous (each edge leaves from where the previous one arrived),
    /// and every edge is one the machine can produce
    /// ([`transition_is_legal`]). Returns the final state per worker.
    pub fn replay(&self) -> Result<std::collections::BTreeMap<u32, WorkerState>, String> {
        let mut states: std::collections::BTreeMap<u32, WorkerState> =
            std::collections::BTreeMap::new();
        let mut last_t = 0u64;
        for (i, e) in self.events.iter().enumerate() {
            if e.seq != i as u64 {
                return Err(format!("event {i}: seq {} is not dense", e.seq));
            }
            if e.t_ns < last_t {
                return Err(format!("event {i}: time went backwards"));
            }
            last_t = e.t_ns;
            let cur = states.entry(e.worker).or_insert(WorkerState::Healthy);
            if *cur != e.from {
                return Err(format!(
                    "event {i}: worker {} leaves `{}` but was `{}`",
                    e.worker,
                    e.from.as_str(),
                    cur.as_str()
                ));
            }
            let t = Transition {
                from: e.from,
                to: e.to,
                reason: e.reason,
            };
            if !transition_is_legal(t) {
                return Err(format!(
                    "event {i}: illegal edge {} -> {} ({})",
                    e.from.as_str(),
                    e.to.as_str(),
                    e.reason.as_str()
                ));
            }
            *cur = e.to;
        }
        Ok(states)
    }

    /// Human-readable rendering of the log.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&format!(
                "[{:>10} ns] worker {}: {} -> {} ({}) progress={} backlog={}{}\n",
                e.t_ns,
                e.worker,
                e.from.as_str(),
                e.to.as_str(),
                e.reason.as_str(),
                e.progress,
                e.backlog,
                if e.buckets_moved > 0 {
                    format!(" buckets_moved={}", e.buckets_moved)
                } else {
                    String::new()
                }
            ));
        }
        out
    }
}

/// Load-shedding policy an IO thread applies when overloaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShedPolicy {
    /// Drop every packet that would land on an over-threshold ring.
    #[default]
    DropTail,
    /// Drop best-effort traffic classes first; the highest class is only
    /// shed at full pressure.
    Priority,
    /// RED-style early drop: probability ramps from 0 at the threshold to
    /// 1 at a full ring (seeded, deterministic draw stream).
    Probabilistic,
}

impl ShedPolicy {
    /// Stable wire/metric name.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedPolicy::DropTail => "drop_tail",
            ShedPolicy::Priority => "priority",
            ShedPolicy::Probabilistic => "probabilistic",
        }
    }

    /// Inverse of [`ShedPolicy::as_str`].
    pub fn parse(s: &str) -> Result<ShedPolicy, String> {
        match s {
            "drop_tail" | "drop-tail" | "tail" => Ok(ShedPolicy::DropTail),
            "priority" | "prio" => Ok(ShedPolicy::Priority),
            "probabilistic" | "red" => Ok(ShedPolicy::Probabilistic),
            other => Err(format!("unknown shed policy `{other}`")),
        }
    }
}

/// Overload-shedding knobs (live runtime; off by default so clean runs
/// stay lossless and bit-identical to DES).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShedConfig {
    /// The policy applied when shedding is triggered.
    pub policy: ShedPolicy,
    /// Ring-occupancy fraction that triggers shedding. `1.0` disables the
    /// occupancy trigger (a full ring then follows the configured
    /// drop/backpressure semantics as before).
    pub occupancy: f64,
    /// Also shed while the SLO burn-rate exceeds 1 (requires an SLO on the
    /// run config).
    pub slo_coupled: bool,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig {
            policy: ShedPolicy::DropTail,
            occupancy: 1.0,
            slo_coupled: false,
        }
    }
}

impl ShedConfig {
    /// True when any trigger is armed.
    pub fn enabled(&self) -> bool {
        self.occupancy < 1.0 || self.slo_coupled
    }

    /// Parses `policy=priority,occupancy=0.85,slo=on`. Unknown keys are
    /// errors.
    pub fn parse(s: &str) -> Result<ShedConfig, String> {
        let mut cfg = ShedConfig::default();
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("shed config: expected key=value, got `{part}`"))?;
            match key.trim() {
                "policy" => cfg.policy = ShedPolicy::parse(val.trim())?,
                "occupancy" => {
                    let v: f64 = val
                        .trim()
                        .parse()
                        .map_err(|e| format!("shed config: bad occupancy: {e}"))?;
                    if !(0.0..=1.0).contains(&v) {
                        return Err(format!("shed config: occupancy must be in [0, 1], got {v}"));
                    }
                    cfg.occupancy = v;
                }
                "slo" => {
                    cfg.slo_coupled = match val.trim() {
                        "on" | "true" | "1" => true,
                        "off" | "false" | "0" => false,
                        other => {
                            return Err(format!("shed config: bad slo flag `{other}`"));
                        }
                    };
                }
                other => return Err(format!("shed config: unknown key `{other}`")),
            }
        }
        Ok(cfg)
    }

    /// Canonical rendering (inverse of [`ShedConfig::parse`]).
    pub fn render(&self) -> String {
        format!(
            "policy={},occupancy={},slo={}",
            self.policy.as_str(),
            self.occupancy,
            if self.slo_coupled { "on" } else { "off" }
        )
    }
}

/// The traffic class of a flow, derived from bits of its RSS hash the
/// indirection table does not consume — a stable per-flow annotation with
/// no frame-byte dependence. Class 0 is the highest priority; classes 2–3
/// are best-effort and shed first under the priority policy.
pub fn traffic_class(rss_hash: u32) -> u8 {
    ((rss_hash >> 8) & 0x3) as u8
}

/// Per-IO-thread shedding decision engine. Deterministic: the probabilistic
/// policy draws from a seeded splitmix64 stream, so a drill replays
/// identically.
#[derive(Debug, Clone)]
pub struct Shedder {
    cfg: ShedConfig,
    rng: u64,
}

impl Shedder {
    /// A shedder for one IO thread.
    pub fn new(cfg: ShedConfig, seed: u64) -> Shedder {
        Shedder { cfg, rng: seed }
    }

    /// True when shedding can ever fire.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled()
    }

    /// The configured policy.
    pub fn policy(&self) -> ShedPolicy {
        self.cfg.policy
    }

    fn next_unit(&mut self) -> f64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Decides the fate of one packet about to be steered onto a ring with
    /// `occupancy` of `capacity` slots filled. `slo_overload` is the
    /// reporter's burn-rate flag. Returns `true` to shed (drop before
    /// enqueue).
    pub fn should_shed(
        &mut self,
        occupancy: usize,
        capacity: usize,
        tclass: u8,
        slo_overload: bool,
    ) -> bool {
        // Pressure in [0, 1]: 0 below the occupancy threshold, ramping to 1
        // at a full ring; an SLO burn pushes pressure to 1 outright.
        let mut pressure = 0.0f64;
        if self.cfg.occupancy < 1.0 && capacity > 0 {
            let frac = occupancy as f64 / capacity as f64;
            if frac >= self.cfg.occupancy {
                pressure = ((frac - self.cfg.occupancy) / (1.0 - self.cfg.occupancy)).min(1.0);
                // Crossing the threshold at all is pressure, even at the
                // boundary (frac == threshold).
                pressure = pressure.max(f64::EPSILON);
            }
        }
        if self.cfg.slo_coupled && slo_overload {
            pressure = 1.0;
        }
        if pressure <= 0.0 {
            return false;
        }
        match self.cfg.policy {
            ShedPolicy::DropTail => true,
            // Best-effort classes (2, 3) shed as soon as there is pressure;
            // class 1 only at full pressure; class 0 never (it rides the
            // ring until genuinely full).
            ShedPolicy::Priority => tclass >= 2 || (tclass == 1 && pressure >= 1.0),
            ShedPolicy::Probabilistic => self.next_unit() < pressure,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(progress: u64, alive: bool, backlog: u64) -> Observation {
        Observation {
            progress,
            alive,
            backlog,
        }
    }

    #[test]
    fn monitor_walks_healthy_suspect_dead_on_stall() {
        let mut m = ShardMonitor::new(3);
        assert_eq!(m.observe(obs(10, true, 0)), None, "first sighting");
        assert_eq!(m.observe(obs(20, true, 5)), None, "progress");
        let t = m.observe(obs(20, true, 5)).expect("first stalled window");
        assert_eq!((t.from, t.to), (WorkerState::Healthy, WorkerState::Suspect));
        assert_eq!(t.reason, TransitionReason::Stall);
        assert_eq!(m.observe(obs(20, true, 5)), None, "second window: waiting");
        let t = m.observe(obs(20, true, 5)).expect("third window: dead");
        assert_eq!((t.from, t.to), (WorkerState::Suspect, WorkerState::Dead));
        assert!(transition_is_legal(t));
        // A dead shard that moves again is Recovering, then Healthy.
        let t = m.observe(obs(25, true, 5)).expect("resumed");
        assert_eq!((t.from, t.to), (WorkerState::Dead, WorkerState::Recovering));
        assert_eq!(t.reason, TransitionReason::Resumed);
        let t = m.observe(obs(30, true, 2)).expect("recovered");
        assert_eq!(
            (t.from, t.to),
            (WorkerState::Recovering, WorkerState::Healthy)
        );
    }

    #[test]
    fn monitor_idle_without_backlog_is_not_a_stall() {
        let mut m = ShardMonitor::new(2);
        m.observe(obs(5, true, 0));
        for _ in 0..10 {
            assert_eq!(m.observe(obs(5, true, 0)), None);
        }
        assert_eq!(m.state(), WorkerState::Healthy);
    }

    #[test]
    fn monitor_suspect_recovers_on_progress() {
        let mut m = ShardMonitor::new(4);
        m.observe(obs(1, true, 1));
        m.observe(obs(1, true, 1)); // Suspect.
        assert_eq!(m.state(), WorkerState::Suspect);
        let t = m.observe(obs(2, true, 1)).expect("progress recovers");
        assert_eq!((t.from, t.to), (WorkerState::Suspect, WorkerState::Healthy));
        assert_eq!(t.reason, TransitionReason::Progress);
    }

    #[test]
    fn monitor_crash_is_immediate_from_any_live_state() {
        let mut m = ShardMonitor::new(4);
        m.observe(obs(1, true, 1));
        let t = m.observe(obs(1, false, 3)).expect("crash");
        assert_eq!((t.from, t.to), (WorkerState::Healthy, WorkerState::Dead));
        assert_eq!(t.reason, TransitionReason::Crash);
        assert!(transition_is_legal(t));
        // Respawn path: external force to Recovering, then progress.
        let t = m
            .force(WorkerState::Recovering, TransitionReason::Respawn)
            .expect("respawn");
        assert!(transition_is_legal(t));
        let t = m.observe(obs(9, true, 0)).expect("replacement progressed");
        assert_eq!(t.to, WorkerState::Healthy);
    }

    #[test]
    fn log_round_trips_and_replays() {
        let mut m = ShardMonitor::new(2);
        let mut log = SupervisorLog::new();
        m.observe(obs(4, true, 2));
        let seq = [
            obs(4, true, 2),
            obs(4, true, 2),
            obs(9, true, 1),
            obs(9, false, 7),
        ];
        let mut t_ns = 0;
        for o in seq {
            t_ns += 500_000;
            if let Some(t) = m.observe(o) {
                let moved = if t.to == WorkerState::Dead { 32 } else { 0 };
                log.record(t_ns, 2, t, o.progress, o.backlog, moved);
            }
        }
        assert_eq!(log.events.len(), 4, "{}", log.explain());
        let parsed = SupervisorLog::from_jsonl(&log.to_jsonl()).unwrap();
        assert!(parsed.bit_eq(&log));
        let finals = parsed.replay().expect("log must replay");
        assert_eq!(finals.get(&2), Some(&WorkerState::Dead));

        // Tampering breaks replay: claim the worker left a state it was
        // never in.
        let mut bad = log.clone();
        bad.events[2].from = WorkerState::Recovering;
        assert!(bad.replay().is_err());
        // An illegal edge breaks replay even when the chain lines up.
        let mut bad = log.clone();
        bad.events[0].to = WorkerState::Recovering;
        bad.events[1].from = WorkerState::Recovering;
        assert!(bad.replay().is_err());
    }

    #[test]
    fn shed_config_parses_and_renders() {
        let cfg = ShedConfig::parse("policy=priority,occupancy=0.8,slo=on").unwrap();
        assert_eq!(cfg.policy, ShedPolicy::Priority);
        assert_eq!(cfg.occupancy, 0.8);
        assert!(cfg.slo_coupled);
        assert!(cfg.enabled());
        assert_eq!(ShedConfig::parse(&cfg.render()).unwrap(), cfg);
        assert!(!ShedConfig::default().enabled());
        assert!(ShedConfig::parse("occupancy=1.5").is_err());
        assert!(ShedConfig::parse("policy=yolo").is_err());
        assert!(ShedConfig::parse("burn=1").is_err());
    }

    #[test]
    fn shedder_policies_behave() {
        // Disabled config never sheds, even on a full ring.
        let mut s = Shedder::new(ShedConfig::default(), 1);
        assert!(!s.should_shed(4096, 4096, 3, true));

        let over = ShedConfig {
            occupancy: 0.5,
            ..ShedConfig::default()
        };
        // Drop-tail sheds everything past the threshold, nothing below.
        let mut s = Shedder::new(over, 1);
        assert!(!s.should_shed(100, 4096, 0, false));
        assert!(s.should_shed(2048, 4096, 0, false));

        // Priority protects class 0/1, sheds 2/3, until full pressure.
        let mut s = Shedder::new(
            ShedConfig {
                policy: ShedPolicy::Priority,
                ..over
            },
            1,
        );
        assert!(!s.should_shed(2100, 4096, 0, false));
        assert!(!s.should_shed(2100, 4096, 1, false));
        assert!(s.should_shed(2100, 4096, 2, false));
        assert!(s.should_shed(2100, 4096, 3, false));
        assert!(s.should_shed(4096, 4096, 1, false), "class 1 at full ring");
        assert!(!s.should_shed(4096, 4096, 0, false), "class 0 never early");

        // Probabilistic ramps: near the threshold almost nothing, near
        // full almost everything, and the draw stream is deterministic.
        let rate = |occ: usize, seed: u64| {
            let mut s = Shedder::new(
                ShedConfig {
                    policy: ShedPolicy::Probabilistic,
                    ..over
                },
                seed,
            );
            (0..1000)
                .filter(|_| s.should_shed(occ, 4096, 0, false))
                .count()
        };
        assert!(rate(2200, 7) < 200, "low pressure sheds rarely");
        assert!(rate(4000, 7) > 800, "high pressure sheds mostly");
        assert_eq!(rate(3000, 7), rate(3000, 7), "seeded = reproducible");

        // SLO coupling pushes pressure to 1 regardless of occupancy.
        let mut s = Shedder::new(
            ShedConfig {
                slo_coupled: true,
                ..ShedConfig::default()
            },
            1,
        );
        assert!(!s.should_shed(0, 4096, 3, false));
        assert!(s.should_shed(0, 4096, 3, true));
    }

    #[test]
    fn traffic_class_is_stable_and_bounded() {
        for h in [0u32, 1, 0xdead_beef, u32::MAX] {
            assert!(traffic_class(h) < 4);
            assert_eq!(traffic_class(h), traffic_class(h));
        }
        // Classes actually spread over flows.
        let classes: std::collections::BTreeSet<u8> = (0..64u32)
            .map(|i| traffic_class(i.wrapping_mul(0x9e37_79b9)))
            .collect();
        assert!(classes.len() > 1);
    }

    #[test]
    fn detection_budget_covers_stall_windows() {
        let cfg = SupervisorConfig::default();
        assert!(cfg.detection_budget() >= Time::from_us(2500));
    }
}
