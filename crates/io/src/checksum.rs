//! The Internet checksum (RFC 1071) and incremental update (RFC 1624).
//!
//! Router elements that rewrite header fields (e.g. `DecIPTTL`) use the
//! incremental form so the cost stays constant instead of rescanning the
//! header — the same trick real fast-path code uses.

/// Sums 16-bit big-endian words with end-around carry, without folding.
fn sum_words(data: &[u8], mut acc: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for w in &mut chunks {
        acc += u32::from(u16::from_be_bytes([w[0], w[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

/// Folds a 32-bit accumulator into a 16-bit one's-complement sum.
fn fold(mut acc: u32) -> u16 {
    while acc >> 16 != 0 {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    acc as u16
}

/// Computes the Internet checksum of `data` (RFC 1071).
///
/// The returned value is ready to be stored in a header checksum field; the
/// checksum field itself must be zero (or excluded) in `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    !fold(sum_words(data, 0))
}

/// Computes the Internet checksum over several byte ranges (e.g. an L4
/// pseudo-header followed by the segment).
pub fn internet_checksum_parts(parts: &[&[u8]]) -> u16 {
    // Byte parity matters: an odd-length part shifts the byte alignment of
    // subsequent parts, so sum word-by-word over a virtual concatenation.
    let mut acc = 0u32;
    let mut carry_byte: Option<u8> = None;
    for part in parts {
        let mut rest: &[u8] = part;
        if let Some(hi) = carry_byte.take() {
            match rest.split_first() {
                Some((&lo, tail)) => {
                    acc += u32::from(u16::from_be_bytes([hi, lo]));
                    rest = tail;
                }
                None => {
                    carry_byte = Some(hi);
                    continue;
                }
            }
        }
        let even = rest.len() & !1;
        acc = sum_words(&rest[..even], acc);
        if rest.len() > even {
            carry_byte = Some(rest[even]);
        }
    }
    if let Some(hi) = carry_byte {
        acc += u32::from(u16::from_be_bytes([hi, 0]));
    }
    !fold(acc)
}

/// Verifies a checksummed region: returns `true` if the stored checksum
/// (included in `data`) is consistent.
pub fn verify(data: &[u8]) -> bool {
    fold(sum_words(data, 0)) == 0xffff
}

/// Incrementally updates checksum `old_check` after a 16-bit field changed
/// from `old` to `new` (RFC 1624, eqn. 3: `HC' = ~(~HC + ~m + m')`).
pub fn incremental_update(old_check: u16, old: u16, new: u16) -> u16 {
    let acc = u32::from(!old_check) + u32::from(!old) + u32::from(new);
    !fold(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The classic example from RFC 1071 §3.
    const RFC1071_DATA: [u8; 8] = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];

    #[test]
    fn rfc1071_example() {
        // The RFC computes the non-inverted sum 0xddf2.
        assert_eq!(internet_checksum(&RFC1071_DATA), !0xddf2);
    }

    #[test]
    fn verify_accepts_valid_and_rejects_corrupt() {
        // A real IPv4 header (from a capture), checksum field 0xb861.
        let hdr: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0xb8, 0x61, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert!(verify(&hdr));
        let mut zeroed = hdr;
        zeroed[10] = 0;
        zeroed[11] = 0;
        assert_eq!(internet_checksum(&zeroed), 0xb861);
        let mut bad = hdr;
        bad[3] ^= 1;
        assert!(!verify(&bad));
    }

    #[test]
    fn odd_length_pads_with_zero() {
        let even = internet_checksum(&[0xab, 0xcd, 0xef, 0x00]);
        let odd = internet_checksum(&[0xab, 0xcd, 0xef]);
        assert_eq!(even, odd);
    }

    #[test]
    fn parts_match_concatenation() {
        let whole = [1u8, 2, 3, 4, 5, 6, 7];
        let concat = internet_checksum(&whole);
        assert_eq!(internet_checksum_parts(&[&whole[..3], &whole[3..]]), concat);
        assert_eq!(
            internet_checksum_parts(&[&whole[..1], &whole[1..2], &whole[2..]]),
            concat
        );
        assert_eq!(internet_checksum_parts(&[&whole, &[]]), concat);
    }

    #[test]
    fn incremental_matches_full_recompute() {
        let mut hdr: [u8; 20] = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let old_check = internet_checksum(&hdr);
        hdr[10..12].copy_from_slice(&old_check.to_be_bytes());

        // Decrement the TTL (byte 8); the 16-bit word is ttl<<8 | proto.
        let old_word = u16::from_be_bytes([hdr[8], hdr[9]]);
        hdr[8] -= 1;
        let new_word = u16::from_be_bytes([hdr[8], hdr[9]]);
        let updated = incremental_update(old_check, old_word, new_word);

        hdr[10] = 0;
        hdr[11] = 0;
        assert_eq!(updated, internet_checksum(&hdr));
    }

    #[test]
    fn incremental_is_inverse_of_itself() {
        let c = 0x1234u16;
        let step = incremental_update(c, 0xaaaa, 0xbbbb);
        assert_eq!(incremental_update(step, 0xbbbb, 0xaaaa), c);
    }
}
