//! The packet object handed to elements.
//!
//! A [`Packet`] owns a pooled [`PacketBuf`] plus receive metadata. When a
//! packet is dropped (explicitly discarded or simply falls out of scope) its
//! buffer automatically returns to the originating [`Mempool`], so buffer
//! accounting can never leak across the modular pipeline — the property DPDK
//! forces NBA to maintain manually.

use crate::buf::{Mempool, PacketBuf};
use nba_sim::Time;

/// Ethernet wire overhead per frame: preamble (7) + SFD (1) + IFG (12).
pub const WIRE_OVERHEAD_BYTES: usize = 20;
/// Minimum Ethernet frame length (including FCS).
pub const MIN_FRAME_LEN: usize = 64;
/// Maximum standard Ethernet frame length (including FCS).
pub const MAX_FRAME_LEN: usize = 1518;

/// A packet traversing the pipeline.
#[derive(Debug)]
pub struct Packet {
    buf: Option<PacketBuf>,
    pool: Option<Mempool>,
    /// NIC port the packet arrived on.
    pub port_in: u16,
    /// RX queue (RSS bucket) the packet arrived on.
    pub queue_in: u16,
    /// RSS hash computed by the NIC.
    pub rss_hash: u32,
    /// Virtual time the packet was put on the wire by the generator; the
    /// round-trip latency figures subtract this from TX completion.
    pub ts_gen: Time,
}

impl Packet {
    /// Wraps an unpooled buffer (tests and generators without a pool).
    pub fn from_buf(buf: PacketBuf) -> Packet {
        Packet {
            buf: Some(buf),
            pool: None,
            port_in: 0,
            queue_in: 0,
            rss_hash: 0,
            ts_gen: Time::ZERO,
        }
    }

    /// Wraps a pooled buffer; the buffer returns to `pool` on drop.
    pub fn from_pool(buf: PacketBuf, pool: Mempool) -> Packet {
        Packet {
            buf: Some(buf),
            pool: Some(pool),
            ..Packet::from_buf(PacketBuf::with_capacity(0, 0))
        }
    }

    /// Builds an unpooled packet holding `frame` (test helper).
    pub fn from_bytes(frame: &[u8]) -> Packet {
        let mut buf = PacketBuf::new();
        buf.fill(crate::buf::DEFAULT_HEADROOM, frame);
        Packet::from_buf(buf)
    }

    /// Frame length in bytes (excluding wire overhead).
    pub fn len(&self) -> usize {
        self.buf().len()
    }

    /// `true` if the frame is empty (never the case for received packets).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bits this frame occupies on the wire, including preamble and IFG.
    pub fn wire_bits(&self) -> u64 {
        ((self.len() + WIRE_OVERHEAD_BYTES) * 8) as u64
    }

    /// Frame bits (the unit the paper's Gbps numbers count).
    pub fn frame_bits(&self) -> u64 {
        (self.len() * 8) as u64
    }

    /// The frame bytes.
    pub fn data(&self) -> &[u8] {
        self.buf().data()
    }

    /// The frame bytes, mutably.
    pub fn data_mut(&mut self) -> &mut [u8] {
        self.buf_mut().data_mut()
    }

    /// The underlying buffer.
    pub fn buf(&self) -> &PacketBuf {
        self.buf.as_ref().expect("packet buffer already taken")
    }

    /// The underlying buffer, mutably (prepend/append/trim for encap).
    pub fn buf_mut(&mut self) -> &mut PacketBuf {
        self.buf.as_mut().expect("packet buffer already taken")
    }
}

impl Drop for Packet {
    fn drop(&mut self) {
        if let (Some(buf), Some(pool)) = (self.buf.take(), self.pool.take()) {
            pool.free(buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_accounting_for_min_frame() {
        let p = Packet::from_bytes(&[0u8; 64]);
        assert_eq!(p.len(), 64);
        assert_eq!(p.frame_bits(), 512);
        assert_eq!(p.wire_bits(), 672);
    }

    #[test]
    fn drop_returns_buffer_to_pool() {
        let pool = Mempool::new(1);
        {
            let buf = pool.alloc().unwrap();
            let _p = Packet::from_pool(buf, pool.clone());
            assert_eq!(pool.outstanding(), 1);
        }
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.stats().frees, 1);
    }

    #[test]
    fn unpooled_packet_drop_is_harmless() {
        let p = Packet::from_bytes(b"abc");
        drop(p);
    }

    #[test]
    fn data_mut_edits_frame() {
        let mut p = Packet::from_bytes(b"abc");
        p.data_mut()[0] = b'x';
        assert_eq!(p.data(), b"xbc");
    }
}
