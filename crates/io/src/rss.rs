//! Receive-side scaling for the live runtime: a thread-side fanout that
//! mirrors [`crate::port::Port::deliver`] over real SPSC rings.
//!
//! The DES NIC model steers frames into simulated queues; the live runtime
//! needs the same flow-affine steering but across OS threads. [`RssFanout`]
//! owns one [`spsc::Producer`] per RX queue and performs exactly the NIC's
//! sequence — Toeplitz-hash the headers, pick a queue through the
//! indirection table, stamp the packet's RSS metadata, enqueue — so a flow's
//! packets always land on the same worker, in order.

use crate::packet::Packet;
use crate::port::rss_hash;
use crate::spsc;
use crate::toeplitz::{queue_for_hash, Toeplitz};

/// Per-queue delivery counters of one fanout.
#[derive(Debug, Clone, Copy, Default)]
pub struct QueueCounters {
    /// Frames enqueued to this RX queue.
    pub delivered: u64,
    /// Frames dropped because this RX queue was full.
    pub dropped: u64,
}

/// Steers packets from one IO thread into per-worker SPSC rings, the way a
/// multi-queue NIC's RSS unit steers frames into RX queues.
pub struct RssFanout {
    port_id: u16,
    hasher: Toeplitz,
    queues: Vec<spsc::Producer<Packet>>,
    counters: Vec<QueueCounters>,
}

impl RssFanout {
    /// Creates a fanout for `port_id` over the given per-queue rings.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is empty.
    pub fn new(port_id: u16, queues: Vec<spsc::Producer<Packet>>) -> RssFanout {
        assert!(!queues.is_empty(), "a fanout needs at least one queue");
        let counters = vec![QueueCounters::default(); queues.len()];
        RssFanout {
            port_id,
            hasher: Toeplitz::default(),
            queues,
            counters,
        }
    }

    /// Number of RX queues.
    pub fn queue_count(&self) -> u16 {
        self.queues.len() as u16
    }

    /// The queue a frame with these bytes would be steered to.
    pub fn queue_for(&self, frame: &[u8]) -> u16 {
        queue_for_hash(rss_hash(&self.hasher, frame), self.queue_count())
    }

    /// Steers one packet: stamps its RSS hash / ingress metadata and pushes
    /// it onto the selected queue's ring. On a full ring the packet comes
    /// back via `Err` so the caller chooses NIC semantics (count a drop) or
    /// lossless semantics (back off and retry).
    pub fn deliver(&mut self, mut pkt: Packet) -> Result<u16, Packet> {
        let hash = rss_hash(&self.hasher, pkt.data());
        let q = queue_for_hash(hash, self.queue_count());
        pkt.rss_hash = hash;
        pkt.port_in = self.port_id;
        pkt.queue_in = q;
        match self.queues[usize::from(q)].push(pkt) {
            Ok(()) => {
                self.counters[usize::from(q)].delivered += 1;
                Ok(q)
            }
            Err(pkt) => Err(pkt),
        }
    }

    /// Records a drop against queue `q` (the caller gave up on a full ring).
    pub fn count_drop(&mut self, q: u16) {
        self.counters[usize::from(q)].dropped += 1;
    }

    /// Per-queue counters, indexed by queue id.
    pub fn counters(&self) -> &[QueueCounters] {
        &self.counters
    }

    /// Total frames dropped across all queues.
    pub fn total_dropped(&self) -> u64 {
        self.counters.iter().map(|c| c.dropped).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buf::Mempool;
    use crate::gen::{TrafficConfig, TrafficGen};
    use nba_sim::Time;

    fn fanout(queues: usize, depth: usize) -> (RssFanout, Vec<spsc::Consumer<Packet>>) {
        let (txs, rxs): (Vec<_>, Vec<_>) = (0..queues).map(|_| spsc::channel(depth)).unzip();
        (RssFanout::new(3, txs), rxs)
    }

    #[test]
    fn stamps_metadata_and_steers_flow_affine() {
        let (mut f, rxs) = fanout(4, 256);
        let pool = Mempool::new(1024);
        let mut gen = TrafficGen::new(TrafficConfig::default());
        let mut pkts = Vec::new();
        gen.generate(Time::from_us(50), &pool, &mut |p| pkts.push(p));
        assert!(pkts.len() > 16, "generator produced {}", pkts.len());
        for pkt in pkts {
            let q = f.deliver(pkt).expect("ring has room");
            let got = rxs[usize::from(q)].pop().expect("just enqueued");
            assert_eq!(got.port_in, 3);
            assert_eq!(got.queue_in, q);
            // Same steering decision as the DES NIC model.
            assert_eq!(q, queue_for_hash(got.rss_hash, 4));
        }
    }

    #[test]
    fn full_ring_returns_packet() {
        let (mut f, _rxs) = fanout(1, 2);
        let pool = Mempool::new(16);
        let mut gen = TrafficGen::new(TrafficConfig::default());
        let mut pkts = Vec::new();
        gen.generate(Time::from_us(20), &pool, &mut |p| pkts.push(p));
        let mut dropped = 0u64;
        for pkt in pkts {
            if let Err(p) = f.deliver(pkt) {
                f.count_drop(p.queue_in);
                dropped += 1;
            }
        }
        assert!(dropped > 0);
        assert_eq!(f.total_dropped(), dropped);
        assert_eq!(f.counters()[0].delivered, 2);
    }
}
