//! In-workspace stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace ships a
//! minimal API-compatible subset: [`rngs::SmallRng`] (an xoshiro256++
//! generator), [`SeedableRng::seed_from_u64`], and the [`Rng`] methods the
//! codebase uses (`gen`, `gen_range`, `fill`, `gen_bool`).
//!
//! The bit streams differ from the real crate; everything in this workspace
//! seeds explicitly and only relies on self-consistent determinism, never on
//! a specific upstream stream.

#![forbid(unsafe_code)]

/// Sources of uniformly random 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible uniformly at random (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> [T; N] {
        std::array::from_fn(|_| T::sample_standard(rng))
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable from a range (integer primitives).
///
/// The blanket `SampleRange` impls below are generic over this trait so
/// that an unsuffixed literal range (`0..38`) unifies with the target
/// type demanded by context (e.g. a slice index) instead of falling back
/// to `i32`, matching real `rand` inference behaviour.
pub trait SampleUniform: Sized + Copy {
    /// Draws uniformly from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_span<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_span<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let span = (hi as u128)
                    .wrapping_sub(lo as u128)
                    .wrapping_add(u128::from(inclusive));
                lo.wrapping_add((u128::from(rng.next_u64()) % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_span(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_span(lo, hi, true, rng)
    }
}

/// The user-facing convenience methods, blanket-implemented for any core.
pub trait Rng: RngCore {
    /// Draws a uniformly random value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            SmallRng {
                s: std::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let va: Vec<u32> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u32> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u16 = r.gen_range(1024..u16::MAX);
            assert!((1024..u16::MAX).contains(&x));
            let y = r.gen_range(8usize..=24);
            assert!((8..=24).contains(&y));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn fill_covers_buffer() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 33];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
