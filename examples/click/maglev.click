// Maglev-style L4 load balancer: consistent hashing picks a backend per
// flow, the flow shards pin established connections across lookup-table
// rebuilds (flip_epoch > 0 removes backend `flip_remove` mid-run with
// minimal disruption). Matches `pipelines::maglev_lb`.
src :: FromInput();
chk :: CheckIPHeader();
lb  :: MaglevLb("backends=8", "table=251", "capacity=1048576");
out :: ToOutput();

src -> chk;
chk [0] -> lb -> out;
chk [1] -> Discard;
