//! Receive-side scaling: the Toeplitz hash (Microsoft RSS specification).
//!
//! The NIC model hashes each packet's 5-tuple fields to pick an RX queue, so
//! all packets of a flow land on the same worker — the property NBA's
//! shared-nothing replicated pipelines rely on.

/// The de-facto standard 40-byte RSS key (Microsoft's verification key).
pub const DEFAULT_RSS_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// A symmetric RSS key (Woo &amp; Park, "Scalable TCP session monitoring with
/// Symmetric Receive-Side Scaling"): the 16-bit pattern `0x6d5a` repeated
/// across all 40 bytes. Because every hashed field (v4/v6 addresses, L4
/// ports) is 16-bit aligned in the input, a key with 16-bit period makes the
/// hash invariant under swapping source and destination — both directions of
/// a connection land on the same RX queue.
pub const SYMMETRIC_RSS_KEY: [u8; 40] = {
    let mut key = [0u8; 40];
    let mut i = 0;
    while i < 40 {
        key[i] = if i % 2 == 0 { 0x6d } else { 0x5a };
        i += 1;
    }
    key
};

/// A Toeplitz hasher with a fixed key.
#[derive(Debug, Clone)]
pub struct Toeplitz {
    key: [u8; 40],
}

impl Default for Toeplitz {
    fn default() -> Self {
        Toeplitz {
            key: DEFAULT_RSS_KEY,
        }
    }
}

impl Toeplitz {
    /// Creates a hasher with a custom 40-byte key.
    pub fn with_key(key: [u8; 40]) -> Toeplitz {
        Toeplitz { key }
    }

    /// Hashes an arbitrary big-endian input byte string.
    pub fn hash(&self, input: &[u8]) -> u32 {
        // The running 32-bit key window starts at the key's first 4 bytes
        // and shifts left one bit per input bit.
        let mut window = u64::from(u32::from_be_bytes(self.key[0..4].try_into().unwrap())) << 32
            | u64::from(u32::from_be_bytes(self.key[4..8].try_into().unwrap()));
        let mut next_key_byte = 8;
        let mut bits_used = 0u32;
        let mut result = 0u32;
        for &byte in input {
            for bit in (0..8).rev() {
                if byte >> bit & 1 == 1 {
                    result ^= (window >> 32) as u32;
                }
                window <<= 1;
                bits_used += 1;
                if bits_used == 8 {
                    bits_used = 0;
                    if next_key_byte < self.key.len() {
                        window |= u64::from(self.key[next_key_byte]);
                        next_key_byte += 1;
                    }
                }
            }
        }
        result
    }

    /// Hashes an IPv4 2-tuple (source address, destination address).
    pub fn hash_ipv4(&self, src: u32, dst: u32) -> u32 {
        let mut input = [0u8; 8];
        input[0..4].copy_from_slice(&src.to_be_bytes());
        input[4..8].copy_from_slice(&dst.to_be_bytes());
        self.hash(&input)
    }

    /// Hashes an IPv4 4-tuple (addresses + L4 ports).
    pub fn hash_ipv4_l4(&self, src: u32, dst: u32, src_port: u16, dst_port: u16) -> u32 {
        let mut input = [0u8; 12];
        input[0..4].copy_from_slice(&src.to_be_bytes());
        input[4..8].copy_from_slice(&dst.to_be_bytes());
        input[8..10].copy_from_slice(&src_port.to_be_bytes());
        input[10..12].copy_from_slice(&dst_port.to_be_bytes());
        self.hash(&input)
    }

    /// Hashes an IPv6 2-tuple.
    pub fn hash_ipv6(&self, src: u128, dst: u128) -> u32 {
        let mut input = [0u8; 32];
        input[0..16].copy_from_slice(&src.to_be_bytes());
        input[16..32].copy_from_slice(&dst.to_be_bytes());
        self.hash(&input)
    }

    /// Hashes an IPv6 4-tuple.
    pub fn hash_ipv6_l4(&self, src: u128, dst: u128, src_port: u16, dst_port: u16) -> u32 {
        let mut input = [0u8; 36];
        input[0..16].copy_from_slice(&src.to_be_bytes());
        input[16..32].copy_from_slice(&dst.to_be_bytes());
        input[32..34].copy_from_slice(&src_port.to_be_bytes());
        input[34..36].copy_from_slice(&dst_port.to_be_bytes());
        self.hash(&input)
    }
}

/// Maps a 32-bit RSS hash onto `queues` RX queues via the low-order bits of
/// an indirection table, the way Intel 82599 NICs do.
pub fn queue_for_hash(hash: u32, queues: u16) -> u16 {
    debug_assert!(queues > 0);
    // A 128-entry indirection table with round-robin queue assignment
    // reduces to a modulo for our purposes.
    (hash & 0x7f) as u16 % queues
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    // Microsoft RSS verification suite, IPv4.
    // Tuples are (src ip, src port, dst ip, dst port, l4 hash, ip-only hash).
    #[test]
    fn microsoft_ipv4_vectors() {
        let t = Toeplitz::default();
        let cases = [
            (
                ip(66, 9, 149, 187),
                2794,
                ip(161, 142, 100, 80),
                1766,
                0x51ccc178u32,
                0x323e8fc2u32,
            ),
            (
                ip(199, 92, 111, 2),
                14230,
                ip(65, 69, 140, 83),
                4739,
                0xc626b0ea,
                0xd718262a,
            ),
            (
                ip(24, 19, 198, 95),
                12898,
                ip(12, 22, 207, 184),
                38024,
                0x5c2b394a,
                0xd2d0a5de,
            ),
            (
                ip(38, 27, 205, 30),
                48228,
                ip(209, 142, 163, 6),
                2217,
                0xafc7327f,
                0x82989176,
            ),
            (
                ip(153, 39, 163, 191),
                44251,
                ip(202, 188, 127, 2),
                1303,
                0x10e828a2,
                0x5d1809c5,
            ),
        ];
        for (src, sport, dst, dport, l4, ip_only) in cases {
            assert_eq!(t.hash_ipv4_l4(src, dst, sport, dport), l4);
            assert_eq!(t.hash_ipv4(src, dst), ip_only);
        }
    }

    // Microsoft RSS verification suite, IPv6 (first entry).
    #[test]
    fn microsoft_ipv6_vector() {
        let t = Toeplitz::default();
        let src = 0x3ffe_2501_0200_1fff_0000_0000_0000_0007u128;
        let dst = 0x3ffe_2501_0200_0003_0000_0000_0000_0001u128;
        assert_eq!(t.hash_ipv6_l4(src, dst, 2794, 1766), 0x40207d3d);
        assert_eq!(t.hash_ipv6(src, dst), 0x2cc18cd5);
    }

    #[test]
    fn queue_mapping_covers_all_queues() {
        let t = Toeplitz::default();
        let queues = 7u16;
        let mut seen = vec![false; queues as usize];
        for i in 0..1000u32 {
            let h = t.hash_ipv4(0x0a000000 + i, 0xc0a80001);
            seen[queue_for_hash(h, queues) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "some queue never selected");
    }

    #[test]
    fn hash_is_deterministic_and_key_sensitive() {
        let t = Toeplitz::default();
        assert_eq!(t.hash(b"abcdef"), t.hash(b"abcdef"));
        let mut key = DEFAULT_RSS_KEY;
        key[0] ^= 0xff;
        let t2 = Toeplitz::with_key(key);
        assert_ne!(t.hash(b"abcdef"), t2.hash(b"abcdef"));
    }

    #[test]
    fn empty_input_hashes_to_zero() {
        assert_eq!(Toeplitz::default().hash(&[]), 0);
    }
}
