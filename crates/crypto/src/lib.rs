//! `nba-crypto`: the cryptographic substrate of the IPsec gateway.
//!
//! The paper's gateway encrypts with AES-128-CTR (via OpenSSL + AES-NI on
//! the CPU, a CUDA kernel on the GPU) and authenticates with HMAC-SHA1
//! (RFC 2404 truncation). This crate implements those primitives from
//! scratch so the reproduced gateway really encrypts and authenticates —
//! integration tests decrypt its output and verify the ICVs. Performance
//! *costs* of the hardware paths are modeled in `nba-sim`'s cost model; the
//! implementations here provide the functional behaviour.
//!
//! Verified against FIPS-197 appendices, NIST SP 800-38A CTR vectors,
//! FIPS 180-4 SHA-1 vectors, and RFC 2202 HMAC vectors.

#![forbid(unsafe_code)]

pub mod aes;
pub mod hmac;
pub mod sha1;

pub use aes::{Aes128, Aes128Ctr};
pub use hmac::HmacSha1;
pub use sha1::Sha1;
