//! The discrete-event runtime: workers, device threads, NICs, and traffic
//! sources as engine entities (§3.2's thread/core mapping, Figure 6).
//!
//! Per socket: `workers_per_socket` worker entities (replicated pipelines,
//! run-to-completion, shared-nothing) plus one device-thread entity driving
//! the socket's GPU. Each NIC port has one RX queue per worker on its
//! socket; RSS spreads flows across them. Traffic-source entities convert
//! offered load into RX arrivals.

use std::cell::RefCell;
use std::rc::Rc;

use nba_gpu::Gpu;
use nba_io::{
    Mempool, Packet, PacketSource, Port, PortHandle, RssTable, TrafficConfig, TrafficGen,
};
use nba_sim::{Ctx, Engine, Entity, EntityId, SimQueue, Time, Wake};

use crate::audit::{DecisionContext, DriftDetector, OffloadStage, SloTracker, StageProfiles};
use crate::batch::{anno, PacketBatch};
use crate::capture::TxRecord;
use crate::element::{ComputeMode, ElemCtx, KernelIo, OffloadSpec};
use crate::element::{DbInput, DbOutput, Postprocess};
use crate::fault::{
    Admission, CircuitBreaker, FaultConfig, FaultInjector, FaultKind, FaultPlan, FaultStats,
    WorkerKill, WorkerStall,
};
use crate::graph::{ElementGraph, NodeId, OutEdge, RunOutcome};
use crate::introspect::FlightRecorder;
use crate::lb::SharedBalancer;
use crate::nls::NodeLocalStorage;
use crate::offload::{self, CompletedTask, OffloadTask};
use crate::runtime::{BuildCtx, PipelineBuilder, RunReport, RuntimeConfig};
use crate::stats::{Counters, LatencyHistogram, Snapshot, SystemInspector};
use crate::supervise::{
    HealthReport, HealthStats, Observation, ShardMonitor, SupervisorLog, WorkerHealth, WorkerState,
};
use crate::telemetry::{
    merge_profiles, ElementProfile, SpanAlloc, TimeSample, TraceBuffer, TraceEvent, TraceEventKind,
};

use nba_gpu::TimelineStats;

use std::collections::HashMap;
use std::sync::Arc;

/// A traffic source feeding one port (synthetic generator or trace replay).
struct SourceEntity {
    gen: Box<dyn PacketSource>,
    port: PortHandle,
    pool: Mempool,
    window: Time,
    horizon: Time,
}

impl Entity for SourceEntity {
    fn step(&mut self, now: Time, _ctx: &mut Ctx) -> Wake {
        let port = Rc::clone(&self.port);
        self.gen.generate(now, &self.pool, &mut |p: Packet| {
            port.borrow_mut().deliver(p)
        });
        if now >= self.horizon {
            Wake::Done
        } else {
            Wake::At(now + self.window)
        }
    }

    fn name(&self) -> &str {
        "traffic-source"
    }
}

/// Telemetry that leaves the simulation when the engine is torn down: the
/// engine owns the worker entities (and with them the graphs holding the
/// per-element profiles and trace rings), so workers flush here on `Drop`.
#[derive(Default)]
struct TelemetrySink {
    profiles: Vec<Vec<ElementProfile>>,
    traces: Vec<Vec<TraceEvent>>,
}

/// One simulated worker core running a pipeline replica.
struct WorkerEntity {
    id: usize,
    cfg: RuntimeConfig,
    graph: ElementGraph,
    nls: NodeLocalStorage,
    inspector: SystemInspector,
    counters: Arc<Counters>,
    /// RX queues this worker polls (queue `local_idx` of each local port).
    rx: Vec<SimQueue<Packet>>,
    rx_rr: usize,
    /// All ports, for TX by the IFACE_OUT annotation.
    ports: Vec<PortHandle>,
    /// Inbound completions from the device thread.
    completions: SimQueue<CompletedTask>,
    /// Outbound offload tasks to the node's device thread.
    offload_q: SimQueue<OffloadTask>,
    device_entity: EntityId,
    latency: Rc<RefCell<LatencyHistogram>>,
    warmup_until: Time,
    /// The worker core is busy until this time; early wakes are deferred
    /// (the engine may deliver completion wakes mid-"computation").
    busy_until: Time,
    /// Where profiles/traces go when the engine drops this worker.
    sink: Rc<RefCell<TelemetrySink>>,
    /// Next batch trace id (only advances while tracing is enabled).
    trace_seq: u64,
    /// Conformance capture: every transmitted packet's record goes here
    /// (None unless [`RuntimeConfig::capture`]).
    capture: Option<Rc<RefCell<Vec<TxRecord>>>>,
    /// Shared heartbeat slots the supervisor entity watches (same struct
    /// the live runtime uses; single-threaded here, but the atomics are
    /// free).
    health: Arc<Vec<WorkerHealth>>,
    /// Deterministic worker-fault drills from the [`FaultPlan`].
    kill: Option<WorkerKill>,
    stall: Option<WorkerStall>,
    /// Packets pulled from RX so far — the drills' trigger clock, counted
    /// identically to the live runtime's.
    rx_pulled: u64,
    stalled_done: bool,
}

impl Drop for WorkerEntity {
    fn drop(&mut self) {
        let mut sink = self.sink.borrow_mut();
        sink.profiles.push(self.graph.profiles());
        let trace = self.graph.take_trace();
        if !trace.is_empty() {
            sink.traces.push(trace);
        }
    }
}

impl WorkerEntity {
    /// Applies a traversal outcome. `cycles_before` is the work already
    /// charged this step: packets hit the wire only after the core spent
    /// that time, so TX (and therefore latency) reflects pipeline depth.
    fn handle_outcome(
        &mut self,
        now: Time,
        cycles_before: u64,
        outcome: RunOutcome,
        trace_batch: u64,
        trace_span: u64,
        ctx: &mut Ctx,
    ) -> u64 {
        let mut cycles = outcome.cycles;
        let cost = &self.cfg.cost;
        let tx_at = now + cost.cycles(cycles_before + cycles);
        if !outcome.tx.is_empty() {
            if let Some(tr) = self.graph.trace_mut() {
                tr.push(TraceEvent {
                    t: now,
                    worker: self.id as u32,
                    batch: trace_batch,
                    node: None,
                    kind: TraceEventKind::Tx,
                    packets: outcome.tx.len() as u32,
                    dur: Time::ZERO,
                    span: trace_span,
                    parent: 0,
                });
            }
        }
        // Transmit packets that reached the pipeline exit.
        let mut burst_ports = 0u64;
        for (pkt, anno_set) in outcome.tx {
            if let Some(cap) = &self.capture {
                // Record the verdict before any port-count wrapping or TX
                // queueing: semantics, not wire behavior.
                cap.borrow_mut().push(TxRecord::capture(&pkt, &anno_set));
            }
            let out_port = anno_set.get(anno::IFACE_OUT) as usize % self.ports.len();
            burst_ports |= 1 << (out_port % 64);
            cycles += cost.tx_per_packet;
            let outcome = self.ports[out_port].borrow_mut().transmit(tx_at, &pkt);
            if let nba_io::TxOutcome::Sent { done_at } = outcome {
                Counters::add(&self.counters.tx_packets, 1);
                // Input-normalized bits: encapsulating gateways report the
                // traffic they absorbed, not the ESP-inflated output.
                let bits = match anno_set.get(anno::ORIG_BITS) {
                    0 => pkt.frame_bits(),
                    b => b,
                };
                Counters::add(&self.counters.tx_frame_bits, bits);
                if now >= self.warmup_until {
                    let lat = done_at.saturating_sub(Time::from_ps(anno_set.get(anno::TIMESTAMP)))
                        + self.cfg.external_latency;
                    self.latency.borrow_mut().record(lat);
                    self.counters.observe_latency(lat.as_ns());
                }
            }
            // TX-ring drops are counted by the port.
        }
        cycles += cost.tx_burst_fixed * burst_ports.count_ones() as u64;
        // Ship suspended batches to the device thread.
        for req in outcome.offloads {
            cycles += cost.offload_enqueue;
            Counters::add(&self.counters.offloaded_batches, 1);
            let task = OffloadTask {
                node: req.node,
                worker: self.id,
                batch: req.batch,
                enqueued_at: now,
            };
            // The queue is unbounded; overload is prevented upstream by
            // gating RX on its depth, so in-chain batches (e.g. AES->HMAC)
            // are never dropped mid-pipeline.
            self.offload_q
                .push(task)
                .unwrap_or_else(|_| unreachable!("offload queue is unbounded"));
            ctx.wake(self.device_entity, now);
        }
        cycles
    }
}

impl Entity for WorkerEntity {
    fn step(&mut self, now: Time, ctx: &mut Ctx) -> Wake {
        if now < self.busy_until {
            return Wake::At(self.busy_until);
        }
        // Deterministic worker drills, checked at the same point as the
        // live runtime (top of the scheduling iteration, so the batch that
        // crossed the threshold was still fully processed).
        if let Some(k) = self.kill {
            if self.rx_pulled >= k.at_packet {
                self.health[self.id].crash();
                return Wake::Done;
            }
        }
        if let Some(s) = self.stall {
            if !self.stalled_done && self.rx_pulled >= s.at_packet {
                self.stalled_done = true;
                self.busy_until = now + Time::from_secs_f64(s.millis / 1e3);
                return Wake::At(self.busy_until);
            }
        }
        let cost = self.cfg.cost.clone();
        let mut cycles = cost.sched_iteration;
        let mut did_work = false;

        // 1. Reap offload completions (the IO loop checks these first).
        while let Some(mut done) = self.completions.pop() {
            did_work = true;
            self.health[self.id].advance(done.batch.len() as u64);
            cycles += cost.completion_check;
            let trace_batch = done.batch.banno().get(anno::TRACE_ID);
            let mut trace_span = 0;
            if self.graph.trace_enabled() {
                // Completion opens a new span whose parent is the device's
                // launch span (the enqueue span on never-launched fallbacks)
                // — the cross-thread link the Chrome exporter renders.
                let parent = done.span();
                trace_span = self.graph.alloc_span();
                done.batch.banno_mut().set(anno::SPAN_ID, trace_span);
                let kind = if done.fallback {
                    TraceEventKind::OffloadFallback
                } else {
                    TraceEventKind::OffloadComplete
                };
                if let Some(tr) = self.graph.trace_mut() {
                    tr.push(TraceEvent {
                        t: now,
                        worker: self.id as u32,
                        batch: trace_batch,
                        node: Some(done.node.0 as u32),
                        kind,
                        packets: done.batch.len() as u32,
                        dur: Time::ZERO,
                        span: trace_span,
                        parent,
                    });
                }
            }
            let mut ectx = ElemCtx {
                now,
                compute: self.cfg.compute,
                nls: &self.nls,
                worker: self.id,
                inspector: &self.inspector,
            };
            let outcome = if done.fallback {
                // The device handed the batch back unprocessed: clear the
                // stale device decision and re-run the offloadable's CPU
                // path from the start of the (possibly fused) chain.
                let mut batch = done.batch;
                batch.banno_mut().set(anno::LB_DEVICE, 0);
                self.graph
                    .run_from(&mut ectx, &cost, &self.counters, done.node, batch)
            } else {
                self.graph
                    .resume_offloaded(&mut ectx, &cost, &self.counters, done.node, done.batch)
            };
            cycles += self.handle_outcome(now, cycles, outcome, trace_batch, trace_span, ctx);
        }

        // 2. Poll RX queues round-robin and fetch one IO burst — unless the
        // offload path is backed up (run-to-completion backpressure: the
        // RX rings then overflow and the NIC drops, like real overload).
        let gate = self.offload_q.len() >= self.cfg.device_backlog_batches;
        let mut pkts: Vec<Packet> = Vec::with_capacity(self.cfg.io_batch);
        if !self.rx.is_empty() && !gate {
            let nq = self.rx.len();
            for k in 0..nq {
                let q = &self.rx[(self.rx_rr + k) % nq];
                let want = self.cfg.io_batch - pkts.len();
                if want == 0 {
                    break;
                }
                q.pop_into(&mut pkts, want);
            }
            self.rx_rr = (self.rx_rr + 1) % nq;
        }

        if pkts.is_empty() {
            if did_work {
                self.busy_until = now + cost.cycles(cycles);
                return Wake::At(self.busy_until);
            }
            return Wake::At(now + self.cfg.poll_interval);
        }

        cycles += cost.rx_burst_fixed + cost.rx_per_packet * pkts.len() as u64;
        Counters::add(&self.counters.rx_packets, pkts.len() as u64);
        self.health[self.id].advance(pkts.len() as u64);
        self.rx_pulled += pkts.len() as u64;

        // 3. Wrap into computation batches and run the pipeline.
        let mut iter = pkts.into_iter().peekable();
        while iter.peek().is_some() {
            let mut batch = PacketBatch::with_capacity(self.cfg.comp_batch);
            for _ in 0..self.cfg.comp_batch {
                match iter.next() {
                    Some(p) => {
                        batch.push(p);
                    }
                    None => break,
                }
            }
            cycles += cost.batch_alloc;
            Counters::add(&self.counters.batches, 1);
            let mut trace_batch = 0;
            let mut trace_span = 0;
            if self.graph.trace_enabled() {
                // Stamp a unique id so the batch's lifecycle can be followed
                // through the trace (nothing on the processing path reads
                // the slot, so stamping cannot change behaviour) plus the
                // batch's root causal span.
                self.trace_seq += 1;
                trace_batch = ((self.id as u64 + 1) << 40) | self.trace_seq;
                batch.banno_mut().set(anno::TRACE_ID, trace_batch);
                trace_span = self.graph.alloc_span();
                batch.banno_mut().set(anno::SPAN_ID, trace_span);
                if let Some(tr) = self.graph.trace_mut() {
                    tr.push(TraceEvent {
                        t: now,
                        worker: self.id as u32,
                        batch: trace_batch,
                        node: None,
                        kind: TraceEventKind::Rx,
                        packets: batch.len() as u32,
                        dur: Time::ZERO,
                        span: trace_span,
                        parent: 0,
                    });
                }
            }
            let mut ectx = ElemCtx {
                now,
                compute: self.cfg.compute,
                nls: &self.nls,
                worker: self.id,
                inspector: &self.inspector,
            };
            let outcome = self
                .graph
                .run_batch(&mut ectx, &cost, &self.counters, batch);
            cycles += self.handle_outcome(now, cycles, outcome, trace_batch, trace_span, ctx);
        }
        self.busy_until = now + cost.cycles(cycles);
        Wake::At(self.busy_until)
    }

    fn name(&self) -> &str {
        "worker"
    }
}

/// A task staged through the GPU whose postprocessing is pending.
struct InFlight {
    node: NodeId,
    /// First node of the (possibly fused) chain — where a CPU fallback
    /// re-enters the pipeline.
    entry: NodeId,
    batches: Vec<(usize, PacketBatch)>,
    output: Vec<u8>,
    items: usize,
    out_bytes: usize,
    /// When the result (or, for a failed task, the watchdog verdict)
    /// becomes visible to the device thread.
    d2h_done: Time,
    skipped_kernel: bool,
    /// The attempt failed on the device (timeout, death, or exhausted
    /// retries); the batches come back unprocessed.
    failed: bool,
    /// The kernel ran but its output block was injected as corrupt; the
    /// scatter-time length check is expected to reject it.
    corrupted: bool,
    /// Measured per-stage nanoseconds, indexed by [`OffloadStage::ALL`]
    /// (all-zero unless stage stats or drift detection is on).
    stage_ns: [u64; 7],
    /// Model-predicted per-stage nanoseconds for the same task.
    pred_ns: [u64; 7],
}

/// The device thread of one NUMA node (§3.2: one per node per device).
struct DeviceEntity {
    cfg: RuntimeConfig,
    tasks: SimQueue<OffloadTask>,
    /// Aggregation buffers per offloadable node id, with the arrival time
    /// of each buffer's oldest batch (the launch deadline anchor).
    agg: HashMap<usize, (Time, Vec<OffloadTask>)>,
    specs: HashMap<usize, OffloadSpec>,
    /// Datablock-reuse chains: node -> immediately following offloadable
    /// node whose datablock is identical (empty unless enabled).
    fuse_next: HashMap<usize, usize>,
    gpu: Rc<RefCell<Gpu>>,
    inflight: Vec<InFlight>,
    /// Per-worker completion queues + entity ids for wake-ups.
    completions: Vec<(SimQueue<CompletedTask>, EntityId)>,
    counters: Arc<Counters>,
    /// The device-thread core is busy until this time.
    busy_until: Time,
    /// Batch-lifecycle trace ring shared with the run assembly (`None`
    /// unless tracing is enabled).
    trace: Option<Rc<RefCell<TraceBuffer>>>,
    /// The run-wide span allocator (shared with every worker graph; `None`
    /// unless tracing is enabled).
    spans: Option<SpanAlloc>,
    /// Degradation-ladder knobs (watchdog, retries, breaker).
    fault: FaultConfig,
    /// Seeded fault source; `None` when the plan is inactive, so the clean
    /// path makes no draws and stays bit-identical to a faultless build.
    injector: Option<FaultInjector>,
    /// This device's circuit breaker.
    breaker: CircuitBreaker,
    /// Shared fault accounting.
    fstats: Arc<FaultStats>,
    /// The run's balancer — told when the breaker trips or re-admits.
    balancer: SharedBalancer,
    /// Where the breaker's quarantine intervals go at engine teardown.
    quarantine_sink: QuarantineSink,
    /// Per-stage offload histograms shared with the run assembly (`None`
    /// unless [`crate::audit::AuditConfig::stage_stats`] is on).
    stages: Option<Rc<RefCell<StageProfiles>>>,
    /// Cost-model drift detector (`None` unless drift detection is on).
    drift: Option<Rc<RefCell<DriftDetector>>>,
    /// Flight recorder receiving drift-event dumps (`None` unless drift
    /// detection is on).
    flight: Option<Arc<FlightRecorder>>,
}

/// Shared collection point for the per-device quarantine intervals,
/// flushed by each [`DeviceEntity`]'s `Drop` at engine teardown.
type QuarantineSink = Rc<RefCell<Vec<(Time, Option<Time>)>>>;

impl Drop for DeviceEntity {
    fn drop(&mut self) {
        self.quarantine_sink
            .borrow_mut()
            .extend_from_slice(self.breaker.intervals());
    }
}

impl DeviceEntity {
    /// Batches currently buffered across aggregates.
    fn backlog(&self) -> usize {
        self.agg.values().map(|(_, v)| v.len()).sum()
    }
}

impl DeviceEntity {
    fn flush(
        &mut self,
        now: Time,
        cycles: &mut u64,
        node: usize,
        tasks: Vec<OffloadTask>,
        ctx: &mut Ctx,
    ) {
        // Circuit breaker first: a quarantined device gets no traffic at
        // all — the batches fall straight back to their workers' CPU paths
        // (breaker state only moves on real attempt outcomes, recorded at
        // postprocess time).
        let admission = if self.injector.is_some() {
            self.breaker.admit(now)
        } else {
            Admission::Normal
        };
        if admission == Admission::Blocked {
            let done_at = now + self.cfg.cost.cycles(*cycles);
            for t in tasks {
                FaultStats::add(&self.fstats.fell_back_batches, 1);
                FaultStats::add(&self.fstats.fell_back_packets, t.batch.len() as u64);
                let (q, eid) = &self.completions[t.worker];
                if let Err(lost) = q.push(CompletedTask {
                    node: NodeId(node),
                    worker: t.worker,
                    batch: t.batch,
                    done_at,
                    fallback: true,
                }) {
                    Counters::add(&self.counters.dropped, lost.batch.len() as u64);
                }
                ctx.wake(*eid, done_at);
            }
            return;
        }
        let mut tasks = tasks;
        // First launch span of this flush: the parent for retry events and
        // the flight-recorder trigger on a quarantine trip.
        let mut flush_span = 0;
        let first_worker = tasks.first().map_or(0, |t| t.worker as u32);
        let first_batch = tasks
            .first()
            .map_or(0, |t| t.batch.banno().get(anno::TRACE_ID));
        if let Some(tr) = &self.trace {
            let mut tr = tr.borrow_mut();
            for t in &mut tasks {
                // Launch opens a device-side span under the worker's
                // enqueue span; the batch carries it on so the completion
                // links back here.
                let parent = t.span();
                let span = self.spans.as_ref().map_or(0, SpanAlloc::next);
                t.set_span(span);
                if flush_span == 0 {
                    flush_span = span;
                }
                tr.push(TraceEvent {
                    t: now,
                    worker: t.worker as u32,
                    batch: t.batch.banno().get(anno::TRACE_ID),
                    node: Some(node as u32),
                    kind: TraceEventKind::OffloadLaunch,
                    packets: t.batch.len() as u32,
                    dur: Time::ZERO,
                    span,
                    parent,
                });
            }
        }
        let cost = &self.cfg.cost;
        let spec = self
            .specs
            .get(&node)
            .expect("offloadable node spec")
            .clone();
        // Datablock reuse: a fused follower runs on the GPU-resident data
        // in the same round trip (one H2D, one D2H, two kernels).
        let fused = self
            .fuse_next
            .get(&node)
            .map(|&m| (m, self.specs.get(&m).expect("fused node spec").clone()));
        // Stage 1 (enqueue_wait): how long the oldest constituent batch sat
        // in the task queue plus the aggregation buffer before this launch.
        let enqueue_wait_ns = tasks
            .iter()
            .map(|t| now.saturating_sub(t.enqueued_at).as_ns())
            .max()
            .unwrap_or(0);
        let batches: Vec<(usize, PacketBatch)> =
            tasks.into_iter().map(|t| (t.worker, t.batch)).collect();
        let refs: Vec<&PacketBatch> = batches.iter().map(|(_, b)| b).collect();
        let staged = offload::stage(&spec, &refs);
        // Preprocessing cost: gather into the page-locked datablock (paid
        // once even for fused chains — the point of the optimization).
        let preproc_cycles = cost.device_task_fixed
            + cost.preproc_per_packet * staged.items as u64
            + (cost.preproc_per_byte * staged.in_bytes as f64) as u64;
        *cycles += preproc_cycles;
        let element_passes = 1 + u64::from(fused.is_some());

        let submit_at = now + cost.cycles(*cycles);
        let mut output = vec![0u8; staged.out_len];
        let skip = spec.heavy && self.cfg.compute == ComputeMode::HeadersOnly;
        let kernel = spec.kernel.clone();
        let fused_kernel = fused.as_ref().map(|(_, s)| s.kernel.clone());
        let lane_ns = staged.lane_ns
            + fused
                .as_ref()
                .map_or(0.0, |(_, s)| chained_lane_ns(s, &refs));
        // The batch resumes after the LAST element of a fused chain — and
        // falls back from the FIRST, so the CPU re-runs the whole chain.
        let resume_node = fused.as_ref().map_or(node, |(m, _)| *m);
        // Offsets header length: everything before the item bytes.
        let hdr_len = staged.input.len() - staged.in_bytes;
        let run_kernel = move |i: &[u8], o: &mut [u8], _n: usize| {
            if skip {
                return;
            }
            kernel(KernelIo::parse(i, o));
            if let Some(k2) = &fused_kernel {
                // Re-stage in place: same offsets, stage-1 output
                // as the next kernel's resident input.
                let mut chained = Vec::with_capacity(i.len());
                chained.extend_from_slice(&i[..hdr_len]);
                chained.extend_from_slice(o);
                k2(KernelIo::parse(&chained, o));
            }
        };

        // Attempt loop: each kernel attempt consumes one fault draw.
        // Transient errors (and allocation failures) retry with backoff up
        // to the configured bound; timeouts and device death abort the
        // task, charge only the wasted H2D copy, and surface at the
        // watchdog deadline; corrupt output completes normally and is
        // caught by the scatter-time length check.
        let mut failed = false;
        let mut corrupted = false;
        let mut attempt_at = submit_at;
        let mut retries_left = self.fault.max_retries;
        let mut detect_at = attempt_at;
        let timing = loop {
            let draw = self.injector.as_mut().and_then(|inj| inj.draw(attempt_at));
            match draw {
                Some(k @ (FaultKind::Timeout | FaultKind::DeviceDeath)) => {
                    let counter = if k == FaultKind::Timeout {
                        &self.fstats.injected_timeout
                    } else {
                        &self.fstats.injected_dead
                    };
                    FaultStats::add(counter, 1);
                    // The H2D copy went out before anything could fail.
                    let _ = self
                        .gpu
                        .borrow_mut()
                        .abort_task(attempt_at, staged.input.len());
                    failed = true;
                    detect_at = attempt_at + self.fault.watchdog;
                    break None;
                }
                Some(FaultKind::Transient) => {
                    FaultStats::add(&self.fstats.injected_transient, 1);
                }
                other => {
                    let res = self.gpu.borrow_mut().run_task(
                        attempt_at,
                        &staged.input,
                        staged.items,
                        lane_ns,
                        &mut output,
                        &run_kernel,
                    );
                    match res {
                        Ok(t) => {
                            if other == Some(FaultKind::CorruptOutput) {
                                FaultStats::add(&self.fstats.injected_corrupt, 1);
                                corrupted = true;
                                // Wrong-length output block: one byte short.
                                output.pop();
                            }
                            break Some(t);
                        }
                        // Device memory exhaustion is a real transient:
                        // same retry-then-fallback ladder, instead of the
                        // old panic.
                        Err(_oom) => {}
                    }
                }
            }
            // Falling out of the match means the attempt was retryable
            // (transient error or allocation failure): back off and redraw,
            // or — once the retry budget is spent — fail the task.
            if retries_left == 0 {
                failed = true;
                detect_at = attempt_at;
                break None;
            }
            retries_left -= 1;
            FaultStats::add(&self.fstats.retried, 1);
            if let Some(tr) = &self.trace {
                tr.borrow_mut().push(TraceEvent {
                    t: attempt_at,
                    worker: first_worker,
                    batch: first_batch,
                    node: Some(node as u32),
                    kind: TraceEventKind::OffloadRetry,
                    packets: staged.items as u32,
                    dur: Time::ZERO,
                    span: self.spans.as_ref().map_or(0, SpanAlloc::next),
                    parent: flush_span,
                });
            }
            attempt_at += self.fault.retry_backoff;
        };
        // Only attempts whose kernel results are actually used count as
        // GPU-processed; fallbacks are counted as CPU work in traversal.
        if timing.is_some() && (skip || !corrupted) {
            Counters::add(
                &self.counters.gpu_processed,
                staged.items as u64 * element_passes,
            );
        }
        let d2h_done = timing.map_or(detect_at, |t| t.d2h_done);

        // Offload stage decomposition: measured against model-predicted
        // time per sub-stage. Gather (and later scatter) are themselves
        // model-derived CPU charges, so their predictions mirror the
        // measurement and contribute no drift; the device-side stages
        // compare engine-timeline reality — including engine queueing and
        // retry backoff — against the per-task cost model.
        let audit_on =
            self.stages.is_some() || self.drift.is_some() || self.cfg.audit.decision_capacity > 0;
        let mut stage_ns = [0u64; 7];
        let mut pred_ns = [0u64; 7];
        if audit_on {
            let gather_ns = cost.cycles(preproc_cycles).as_ns();
            stage_ns[OffloadStage::EnqueueWait.index()] = enqueue_wait_ns;
            stage_ns[OffloadStage::Gather.index()] = gather_ns;
            pred_ns[OffloadStage::Gather.index()] = gather_ns;
            // Launch covers submit-to-final-attempt: retry backoff, and for
            // failed tasks the watchdog wait until the verdict surfaces.
            let launch_end = if failed { detect_at } else { attempt_at };
            stage_ns[OffloadStage::Launch.index()] = launch_end.saturating_sub(submit_at).as_ns();
            if let Some(t) = timing {
                stage_ns[OffloadStage::CopyIn.index()] =
                    t.h2d_done.saturating_sub(attempt_at).as_ns();
                stage_ns[OffloadStage::Compute.index()] =
                    t.kernel_done.saturating_sub(t.h2d_done).as_ns();
                stage_ns[OffloadStage::CopyOut.index()] =
                    t.d2h_done.saturating_sub(t.kernel_done).as_ns();
            }
            pred_ns[OffloadStage::CopyIn.index()] = cost.gpu.h2d_time(staged.input.len()).as_ns();
            pred_ns[OffloadStage::Compute.index()] = cost.gpu.kernel_time(lane_ns).as_ns();
            pred_ns[OffloadStage::CopyOut.index()] = cost.gpu.d2h_time(staged.out_len).as_ns();
        }

        // Publish the decision inputs the balancer cites in its next audit
        // record (reads only; skipped entirely when auditing is off, so
        // un-audited runs make no extra balancer calls).
        if self.cfg.audit.decision_capacity > 0 {
            let queue_depth = (self.tasks.len() + self.backlog()) as u64;
            let busy = self.gpu.borrow().stats().kernel_busy;
            let gpu_busy = if now.is_zero() {
                0.0
            } else {
                busy.as_secs_f64() / now.as_secs_f64()
            };
            let items = staged.items.max(1) as f64;
            self.balancer.lock().set_decision_context(DecisionContext {
                queue_depth,
                gpu_busy,
                // Serial single-lane kernel time per item: the CPU-side
                // cost proxy the GPU run amortizes away.
                predicted_cpu_ns_per_pkt: lane_ns / items,
                predicted_gpu_ns_per_pkt: (pred_ns[OffloadStage::CopyIn.index()]
                    + pred_ns[OffloadStage::Compute.index()]
                    + pred_ns[OffloadStage::CopyOut.index()])
                    as f64
                    / items,
            });
        }

        self.inflight.push(InFlight {
            node: NodeId(resume_node),
            entry: NodeId(node),
            batches,
            output,
            items: staged.items,
            out_bytes: staged.out_len,
            d2h_done,
            skipped_kernel: skip,
            failed,
            corrupted,
            stage_ns,
            pred_ns,
        });
    }
}

/// Single-lane kernel nanoseconds a chained element adds over the same
/// staged items.
fn chained_lane_ns(spec: &OffloadSpec, batches: &[&PacketBatch]) -> f64 {
    let mut ns = 0.0;
    for b in batches {
        for i in b.live_indices() {
            let len = b.packet(i).expect("live index").len();
            ns += spec.gpu.item_ns(len);
        }
    }
    ns
}

impl Entity for DeviceEntity {
    fn step(&mut self, now: Time, ctx: &mut Ctx) -> Wake {
        if now < self.busy_until {
            return Wake::At(self.busy_until);
        }
        let cost = self.cfg.cost.clone();
        let mut cycles: u64 = 0;

        // 1. Postprocess tasks whose D2H copy has landed.
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].d2h_done <= now {
                let mut t = self.inflight.swap_remove(i);
                let mut fallback = t.failed;
                if !t.failed {
                    let pp_cycles = cost.postproc_per_packet * t.items as u64
                        + (cost.postproc_per_byte * t.out_bytes as f64) as u64;
                    cycles += pp_cycles;
                    // Stage 7 (scatter): the postprocess copy back into the
                    // batches — like gather, a model-derived CPU charge, so
                    // its prediction mirrors the measurement.
                    let scatter_ns = cost.cycles(pp_cycles).as_ns();
                    t.stage_ns[OffloadStage::Scatter.index()] = scatter_ns;
                    t.pred_ns[OffloadStage::Scatter.index()] = scatter_ns;
                    if !t.skipped_kernel {
                        let spec = self.specs.get(&t.node.0).expect("spec").clone();
                        let mut only: Vec<PacketBatch> = t
                            .batches
                            .iter_mut()
                            .map(|(_, b)| std::mem::take(b))
                            .collect();
                        // The scatter length check is the corruption
                        // detector: a bad output block leaves every packet
                        // untouched and sends the task down the CPU path.
                        if let Err(e) = offload::scatter(&spec, &mut only, &t.output) {
                            debug_assert!(t.corrupted, "scatter misaligned with staging: {e}");
                            fallback = true;
                        }
                        for ((_, slot), b) in t.batches.iter_mut().zip(only) {
                            *slot = b;
                        }
                    }
                }
                if let Some(st) = &self.stages {
                    let mut st = st.borrow_mut();
                    for (stage, &ns) in OffloadStage::ALL.iter().zip(&t.stage_ns) {
                        st.record(*stage, ns);
                    }
                    st.tasks += 1;
                }
                // Feed the drift detector (successful attempts only: a
                // failed task has no device timeline to compare against
                // the model). The first threshold crossing snapshots the
                // flight recorder, naming the offending stage.
                if !t.failed {
                    if let Some(d) = &self.drift {
                        if let Some(stage) = d.borrow_mut().observe(&t.stage_ns, &t.pred_ns) {
                            if let Some(fl) = &self.flight {
                                fl.dump(
                                    &format!("cost_drift_{}", stage.as_str()),
                                    None,
                                    0,
                                    now,
                                    self.fstats.snapshot(),
                                );
                            }
                        }
                    }
                }
                // One breaker verdict per task, on the device clock.
                if self.injector.is_some() {
                    if fallback {
                        if self.breaker.record_failure(now) {
                            FaultStats::add(&self.fstats.quarantine_entered, 1);
                            self.balancer.lock().observe_device_health(false);
                        }
                    } else if self.breaker.record_success(now) {
                        FaultStats::add(&self.fstats.quarantine_exited, 1);
                        self.balancer.lock().observe_device_health(true);
                    }
                }
                let done_at = now + cost.cycles(cycles);
                let resume = if fallback { t.entry } else { t.node };
                for (worker, batch) in t.batches {
                    if fallback {
                        FaultStats::add(&self.fstats.fell_back_batches, 1);
                        FaultStats::add(&self.fstats.fell_back_packets, batch.len() as u64);
                    }
                    let (q, eid) = &self.completions[worker];
                    if let Err(lost) = q.push(CompletedTask {
                        node: resume,
                        worker,
                        batch,
                        done_at,
                        fallback,
                    }) {
                        Counters::add(&self.counters.dropped, lost.batch.len() as u64);
                    }
                    ctx.wake(*eid, done_at);
                }
            } else {
                i += 1;
            }
        }

        // 2. Drain newly arrived tasks into per-node aggregation buffers,
        // unless the buffered backlog already exceeds the cap (then tasks
        // stay in the bounded queue, which eventually overflows into drops
        // at the workers — overload backpressure).
        while self.backlog() < self.cfg.device_backlog_batches {
            let Some(task) = self.tasks.pop() else {
                break;
            };
            cycles += cost.offload_dequeue;
            let entry = self
                .agg
                .entry(task.node.0)
                .or_insert_with(|| (now, Vec::new()));
            if entry.1.is_empty() {
                entry.0 = now;
            }
            entry.1.push(task);
        }

        // 3. Launch aggregates: full ones immediately, partial ones once
        // their oldest batch has waited out the aggregation timeout — and
        // only while the GPU compute engine is not too far behind (§3.3
        // aggregation; the backlog cap turns saturation into queue growth
        // rather than unbounded in-flight work).
        let nodes: Vec<usize> = self.agg.keys().copied().collect();
        let mut next_deadline: Option<Time> = None;
        for node in nodes {
            loop {
                let gpu_behind = self.inflight.len() >= self.cfg.gpu_max_inflight;
                let (oldest, buf) = self.agg.get_mut(&node).expect("agg buffer");
                if buf.is_empty() {
                    break;
                }
                let full = buf.len() >= self.cfg.offload_aggregate;
                let expired = now >= *oldest + self.cfg.offload_agg_timeout;
                if gpu_behind || !(full || expired) {
                    if !gpu_behind {
                        let dl = *oldest + self.cfg.offload_agg_timeout;
                        next_deadline = Some(next_deadline.map_or(dl, |d: Time| d.min(dl)));
                    }
                    break;
                }
                let take = buf.len().min(self.cfg.offload_aggregate);
                let rest = buf.split_off(take);
                let chunk = std::mem::replace(buf, rest);
                *oldest = now;
                self.flush(now, &mut cycles, node, chunk, ctx);
            }
        }

        // 4. Sleep until the next D2H completion, aggregation deadline, or
        // GPU-backlog relief — whichever comes first.
        let next_pp = self.inflight.iter().map(|t| t.d2h_done).min();
        let busy_until = now + cost.cycles(cycles);
        let mut wake: Option<Time> = next_pp;
        if let Some(dl) = next_deadline {
            wake = Some(wake.map_or(dl, |w| w.min(dl)));
        }
        if (self.backlog() > 0 || !self.tasks.is_empty())
            && self.inflight.len() >= self.cfg.gpu_max_inflight
        {
            // Blocked on in-flight tasks: the next D2H completion (already
            // in `wake`) frees a slot. Nothing further to schedule.
        } else if self.backlog() > 0 || !self.tasks.is_empty() {
            // Work remains and slots are free: re-run shortly.
            let soon = now + Time::from_us(5);
            wake = Some(wake.map_or(soon, |w| w.min(soon)));
        }
        self.busy_until = busy_until;
        match wake {
            Some(t) => Wake::At(t.max(busy_until)),
            None if cycles > 0 => Wake::At(busy_until),
            None => Wake::Idle,
        }
    }

    fn name(&self) -> &str {
        "device-thread"
    }
}

/// A read-only observer recording the run time-series (the Figure 12/13
/// traces). It is added after every other entity, so at equal timestamps it
/// runs last — and since it only reads counters, port statistics, GPU
/// timelines, and the balancer, it cannot perturb the simulation: a run
/// with the sampler produces bit-identical results to one without.
struct SamplerEntity {
    interval: Time,
    horizon: Time,
    inspector: SystemInspector,
    balancer: SharedBalancer,
    ports: Vec<PortHandle>,
    gpus: Vec<Rc<RefCell<Gpu>>>,
    prev: Snapshot,
    prev_gpu: Vec<TimelineStats>,
    last_t: Time,
    samples: Rc<RefCell<Vec<TimeSample>>>,
    /// SLO budget tracker, shared with the run assembly for the final
    /// verdict (`None` unless an SLO is configured).
    slo: Option<Rc<RefCell<SloTracker>>>,
}

impl Entity for SamplerEntity {
    fn step(&mut self, now: Time, _ctx: &mut Ctx) -> Wake {
        let snap = self.inspector.snapshot();
        let gpu_now: Vec<TimelineStats> = self.gpus.iter().map(|g| g.borrow().stats()).collect();
        if now > self.last_t {
            let win = now - self.last_t;
            let secs = win.as_secs_f64();
            let w = snap - self.prev;
            let rx_dropped: u64 = self
                .ports
                .iter()
                .map(|p| p.borrow().counters().rx_dropped)
                .sum();
            let gpu_busy: Vec<f64> = gpu_now
                .iter()
                .zip(&self.prev_gpu)
                .map(|(cur, prev)| cur.delta(prev).kernel_busy_fraction(win))
                .collect();
            let tx_mpps = w.tx_packets as f64 / secs / 1e6;
            let latency_ewma_ns = self.inspector.worst_latency_ewma_ns();
            let slo = self
                .slo
                .as_ref()
                .map(|tr| tr.borrow_mut().observe(latency_ewma_ns, tx_mpps));
            self.samples.borrow_mut().push(TimeSample {
                t: now,
                tx_packets: snap.tx_packets,
                tx_mpps,
                tx_gbps: w.tx_frame_bits as f64 / secs / 1e9,
                dropped: snap.dropped,
                rx_dropped,
                latency_ewma_ns,
                offloaded_batches: snap.offloaded_batches,
                offload_fraction: self.balancer.lock().offload_fraction(),
                gpu_busy,
                shards: Vec::new(),
                slo,
            });
        }
        self.prev = snap;
        self.prev_gpu = gpu_now;
        self.last_t = now;
        if now >= self.horizon {
            Wake::Done
        } else {
            Wake::At((now + self.interval).min(self.horizon))
        }
    }

    fn name(&self) -> &str {
        "telemetry-sampler"
    }
}

/// Shared state between the supervisor entity and the run assembly: the
/// transition log plus each shard's state machine, read out at teardown.
struct SupState {
    monitors: Vec<ShardMonitor>,
    log: SupervisorLog,
}

/// The DES mirror of the live runtime's supervisor thread: ticks the same
/// [`ShardMonitor`] watchdog over the same heartbeat slots and re-steers
/// the shared per-socket RSS tables away from dead shards. The DES never
/// respawns (an engine entity that returned `Done` stays gone) — a crashed
/// shard stays quarantined, which is exactly the bounded-loss half of the
/// drill the differential suite compares against the live runtime.
struct SupervisorEntity {
    interval: Time,
    horizon: Time,
    wps: usize,
    health: Arc<Vec<WorkerHealth>>,
    /// RX queues per worker, for the backlog half of the stall heuristic.
    rx: Vec<Vec<SimQueue<Packet>>>,
    /// One shared indirection table per socket (all its ports steer
    /// through it).
    tables: Vec<Arc<RssTable>>,
    balancer: SharedBalancer,
    hstats: Arc<HealthStats>,
    state: Rc<RefCell<SupState>>,
    /// The flow plane: a dead worker's shard is invalidated (the
    /// documented half of the invalidate-on-death policy).
    flow_registry: crate::flow::FlowRegistry,
}

impl Entity for SupervisorEntity {
    fn step(&mut self, now: Time, _ctx: &mut Ctx) -> Wake {
        let mut st = self.state.borrow_mut();
        let workers = self.health.len();
        for w in 0..workers {
            let h = &self.health[w];
            h.epoch.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if h.done.load(std::sync::atomic::Ordering::Acquire) {
                continue;
            }
            let backlog: u64 = self.rx[w].iter().map(|q| q.len() as u64).sum();
            let obs = Observation {
                progress: h.progress.load(std::sync::atomic::Ordering::Relaxed),
                alive: h.alive.load(std::sync::atomic::Ordering::Acquire),
                backlog,
            };
            let Some(t) = st.monitors[w].observe(obs) else {
                continue;
            };
            let socket = w / self.wps;
            let local = (w % self.wps) as u16;
            let mut moved = 0usize;
            match t.to {
                WorkerState::Dead => {
                    let survivors: Vec<u16> = (0..self.wps)
                        .filter(|&l| {
                            let g = socket * self.wps + l;
                            g != w && st.monitors[g].state() != WorkerState::Dead
                        })
                        .map(|l| l as u16)
                        .collect();
                    moved = self.tables[socket].remap_dead(local, &survivors);
                    if moved > 0 {
                        HealthStats::add(&self.hstats.resteers, 1);
                        HealthStats::add(&self.hstats.buckets_moved, moved as u64);
                    }
                    // The quarantine lands in the decision-audit log, the
                    // same replayable trail the device breaker leaves.
                    self.balancer.lock().observe_device_health(false);
                    // Invalidate-on-death: every flow a crashed shard held
                    // is accounted as lost (`evict_death`) — survivors see
                    // re-steered flows as fresh foreign inserts. Stalled
                    // (but alive) shards keep their tables: their thread
                    // still owns the state and may recover.
                    if t.reason == crate::supervise::TransitionReason::Crash {
                        self.flow_registry.invalidate_shard(w);
                    }
                }
                WorkerState::Recovering => {
                    moved = self.tables[socket].restore(local);
                    if moved > 0 {
                        HealthStats::add(&self.hstats.resteers, 1);
                        HealthStats::add(&self.hstats.buckets_moved, moved as u64);
                    }
                    self.balancer.lock().observe_device_health(true);
                }
                WorkerState::Healthy | WorkerState::Suspect => {}
            }
            h.state
                .store(t.to.as_u8(), std::sync::atomic::Ordering::Relaxed);
            st.log.record(
                now.as_ns(),
                w as u32,
                t,
                obs.progress,
                obs.backlog,
                moved as u32,
            );
        }
        if now >= self.horizon {
            Wake::Done
        } else {
            Wake::At((now + self.interval).min(self.horizon))
        }
    }

    fn name(&self) -> &str {
        "worker-supervisor"
    }
}

/// Runs one experiment end to end and reports the measurement window.
///
/// `traffic` holds one configuration per port (see
/// [`crate::runtime::traffic_per_port`]).
///
/// # Panics
///
/// Panics on inconsistent configuration (more workers than cores, traffic
/// list not matching the port count).
pub fn run(
    cfg: &RuntimeConfig,
    build: &PipelineBuilder,
    balancer: &SharedBalancer,
    traffic: &[TrafficConfig],
) -> RunReport {
    let offered: f64 = traffic.iter().map(|t| t.offered_gbps).sum();
    let sources: Vec<Box<dyn PacketSource>> = traffic
        .iter()
        .map(|t| Box::new(TrafficGen::new(t.clone())) as Box<dyn PacketSource>)
        .collect();
    run_with_sources(cfg, build, balancer, sources, offered)
}

/// Like [`run`], but over arbitrary packet sources — one per port — such as
/// [`nba_io::Replay`] trace replays. `offered_gbps` is the total offered
/// load reported back in the [`RunReport`].
///
/// # Panics
///
/// Panics on inconsistent configuration (more workers than cores, source
/// list not matching the port count).
pub fn run_with_sources(
    cfg: &RuntimeConfig,
    build: &PipelineBuilder,
    balancer: &SharedBalancer,
    sources: Vec<Box<dyn PacketSource>>,
    offered_gbps: f64,
) -> RunReport {
    let topo = &cfg.topology;
    assert_eq!(
        sources.len(),
        topo.ports.len(),
        "need one packet source per port"
    );
    for s in &topo.sockets {
        assert!(
            cfg.workers_per_socket < s.cores || s.cores == 1,
            "reserve one core per socket for the device thread"
        );
    }

    let mut engine = Engine::new();
    let sockets = topo.sockets.len();
    let wps = cfg.workers_per_socket as usize;
    let total_workers = sockets * wps;

    // Shared infrastructure.
    let pools: Vec<Mempool> = (0..sockets).map(|_| Mempool::new(cfg.pool_size)).collect();
    let nls: Vec<NodeLocalStorage> = (0..sockets).map(|_| NodeLocalStorage::new()).collect();
    // One flow registry spans every socket (workers are numbered globally,
    // so shard ownership is unambiguous); stateful elements attach to it
    // through their socket's node-local storage.
    let flow_registry = crate::flow::FlowRegistry::new();
    flow_registry.set_workers(total_workers);
    if cfg.flow_journal {
        flow_registry.enable_journal();
    }
    for n in &nls {
        flow_registry.publish(n);
    }
    let counters: Vec<Arc<Counters>> = (0..total_workers)
        .map(|_| Arc::new(Counters::default()))
        .collect();
    let inspector = SystemInspector::new(counters.clone());
    // Per-socket RSS indirection tables, shared by every port on the
    // socket. Boot state is identical to the static demux, so a clean run
    // is bit-for-bit the same; only a supervisor re-steer changes it.
    let rss_tables: Vec<Arc<RssTable>> = (0..sockets)
        .map(|_| Arc::new(RssTable::new(wps as u16)))
        .collect();
    let ports: Vec<PortHandle> = topo
        .ports
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let mut port = Port::new(i as u16, p.speed_gbps, wps as u16, cfg.rxq_depth);
            port.set_rss_table(rss_tables[p.socket].clone());
            port.into_handle()
        })
        .collect();

    // Worker heartbeats + shed/loss accounting (the live runtime's exact
    // structs; the atomics are free in a single-threaded simulation).
    let health: Arc<Vec<WorkerHealth>> = Arc::new(
        (0..total_workers)
            .map(|_| WorkerHealth::new())
            .collect::<Vec<_>>(),
    );
    let hstats: Arc<HealthStats> = Arc::new(HealthStats::default());

    // Queues between workers and device threads.
    let offload_qs: Vec<SimQueue<OffloadTask>> =
        (0..sockets).map(|_| SimQueue::unbounded()).collect();
    let completion_qs: Vec<SimQueue<CompletedTask>> = (0..total_workers)
        .map(|_| SimQueue::bounded(8192))
        .collect();

    // Build pipeline replicas and capture the offload specs from a replica.
    let latencies: Vec<Rc<RefCell<LatencyHistogram>>> = (0..total_workers)
        .map(|_| Rc::new(RefCell::new(LatencyHistogram::new())))
        .collect();
    let mut graphs: Vec<ElementGraph> = Vec::with_capacity(total_workers);
    for w in 0..total_workers {
        let socket = w / wps;
        let bctx = BuildCtx {
            worker: w,
            socket,
            nls: nls[socket].clone(),
            balancer: balancer.clone(),
            policy: cfg.branch_policy,
        };
        let mut g = build(&bctx);
        if w == 0 {
            // Mandatory deep preflight on the first replica (all replicas
            // are clones of one pipeline): shallow lint plus the
            // path-sensitive pass and the static queue-law checks over
            // this run's capacity model. Warnings are logged; Error-
            // severity findings refuse to start.
            crate::verify::preflight(&g, &crate::verify::CapacityModel::from_runtime(cfg));
        }
        g.enable_trace(cfg.telemetry.trace_capacity);
        graphs.push(g);
    }
    // One span allocator for the whole run: every worker graph and the
    // device entities draw from it, so parent/child links are globally
    // unique across threads of the simulated system.
    let spans: Option<SpanAlloc> = (cfg.telemetry.trace_capacity > 0).then(SpanAlloc::new);
    if let Some(alloc) = &spans {
        for g in &mut graphs {
            g.share_spans(alloc.clone());
        }
    }
    let mut specs: HashMap<usize, OffloadSpec> = HashMap::new();
    let mut fuse_next: HashMap<usize, usize> = HashMap::new();
    {
        let g = &mut graphs[0];
        for n in 0..g.len() {
            if let Some(spec) = g.element_mut(NodeId(n)).offload() {
                specs.insert(n, spec);
            }
        }
        if cfg.datablock_reuse {
            // Fuse N -> M when M directly follows N and consumes exactly
            // the datablock N produced in place.
            for (&n, spec) in &specs {
                let Some(OutEdge::Node(m)) = g.out_edge(NodeId(n), 0) else {
                    continue;
                };
                let Some(next) = specs.get(&m.0) else {
                    continue;
                };
                let in_place = matches!(spec.output, DbOutput::InPlace { extra: 0 })
                    && matches!(next.output, DbOutput::InPlace { extra: 0 })
                    && spec.postprocess == Postprocess::WriteBack
                    && next.postprocess == Postprocess::WriteBack;
                let same_block = matches!(
                    (&spec.input, &next.input),
                    (DbInput::WholePacket { offset: a }, DbInput::WholePacket { offset: b }) if a == b
                );
                if in_place && same_block {
                    fuse_next.insert(n, m.0);
                }
            }
        }
    }

    // Device entities (placeholder ids patched after workers are added:
    // engine ids are assigned in insertion order, so compute them upfront).
    // Entity layout: [workers 0..W) [devices W..W+S) [sources ...].
    let gpus: Vec<Rc<RefCell<Gpu>>> = (0..sockets)
        .map(|_| Rc::new(RefCell::new(Gpu::gtx680(cfg.cost.gpu.clone()))))
        .collect();
    let device_ids: Vec<EntityId> = (0..sockets).map(|s| EntityId(total_workers + s)).collect();

    // Telemetry plumbing: the drop-time sink for worker-held state, the
    // device-side trace ring, and the sampler's output vector.
    let sink = Rc::new(RefCell::new(TelemetrySink::default()));
    let device_trace: Option<Rc<RefCell<TraceBuffer>>> = (cfg.telemetry.trace_capacity > 0)
        .then(|| Rc::new(RefCell::new(TraceBuffer::new(cfg.telemetry.trace_capacity))));
    let samples: Rc<RefCell<Vec<TimeSample>>> = Rc::new(RefCell::new(Vec::new()));

    // Fault machinery: shared accounting plus the sink device entities
    // flush their quarantine intervals into at teardown.
    let fstats: Arc<FaultStats> = Arc::new(FaultStats::default());
    let quarantine_sink: QuarantineSink = Rc::new(RefCell::new(Vec::new()));

    // Decision-audit plane: shared stage/drift/flight/SLO handles. All
    // `None` when the audit config is off, so un-audited runs leave the
    // device and sampler paths untouched.
    if cfg.audit.decision_capacity > 0 {
        balancer.lock().enable_audit(cfg.audit.decision_capacity);
    }
    let stages: Option<Rc<RefCell<StageProfiles>>> = cfg
        .audit
        .stage_stats
        .then(|| Rc::new(RefCell::new(StageProfiles::new())));
    let drift: Option<Rc<RefCell<DriftDetector>>> = cfg
        .audit
        .drift
        .clone()
        .map(|d| Rc::new(RefCell::new(DriftDetector::new(d))));
    let flight: Option<Arc<FlightRecorder>> = drift
        .is_some()
        .then(|| Arc::new(FlightRecorder::new(total_workers, cfg.flight.clone())));
    let slo_tracker: Option<Rc<RefCell<SloTracker>>> = cfg
        .slo
        .clone()
        .map(|s| Rc::new(RefCell::new(SloTracker::new(s))));

    // TX conformance capture (differential suite only).
    let capture_sink: Option<Rc<RefCell<Vec<TxRecord>>>> =
        cfg.capture.then(|| Rc::new(RefCell::new(Vec::new())));

    // Workers.
    let mut rx_handles: Vec<Vec<SimQueue<Packet>>> = Vec::with_capacity(total_workers);
    for w in 0..total_workers {
        let socket = w / wps;
        let local = w % wps;
        let rx: Vec<SimQueue<Packet>> = topo
            .ports_on_socket(socket)
            .into_iter()
            .map(|p| ports[p].borrow().rx_queue(local as u16))
            .collect();
        rx_handles.push(rx.clone());
        let graph = graphs.remove(0);
        let entity = WorkerEntity {
            id: w,
            cfg: cfg.clone(),
            graph,
            nls: nls[socket].clone(),
            inspector: inspector.clone(),
            counters: counters[w].clone(),
            rx,
            rx_rr: w,
            ports: ports.clone(),
            completions: completion_qs[w].clone(),
            offload_q: offload_qs[socket].clone(),
            device_entity: device_ids[socket],
            latency: latencies[w].clone(),
            warmup_until: cfg.warmup,
            busy_until: Time::ZERO,
            sink: sink.clone(),
            trace_seq: 0,
            capture: capture_sink.clone(),
            health: health.clone(),
            kill: cfg.fault.plan.kill_for(w as u32),
            stall: cfg.fault.plan.stall_for(w as u32),
            rx_pulled: 0,
            stalled_done: false,
        };
        let id = engine.add(Box::new(entity), Time::ZERO);
        debug_assert_eq!(id.0, w);
    }

    // Device threads.
    for (s, gpu) in gpus.iter().enumerate() {
        let completions: Vec<(SimQueue<CompletedTask>, EntityId)> = (0..total_workers)
            .map(|w| (completion_qs[w].clone(), EntityId(w)))
            .collect();
        // Each device draws from its own deterministic stream, derived
        // from the one user-facing seed.
        // Worker-only fault plans leave the device injector off, so the
        // offload path of a kill/stall drill stays bit-identical to a
        // clean run.
        let injector = cfg.fault.plan.device_active().then(|| {
            let seed = cfg
                .fault
                .plan
                .seed
                .wrapping_add((s as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            FaultInjector::new(FaultPlan {
                seed,
                ..cfg.fault.plan.clone()
            })
        });
        let entity = DeviceEntity {
            cfg: cfg.clone(),
            tasks: offload_qs[s].clone(),
            agg: HashMap::new(),
            specs: specs.clone(),
            fuse_next: fuse_next.clone(),
            gpu: gpu.clone(),
            inflight: Vec::new(),
            completions,
            counters: counters[s * wps].clone(),
            busy_until: Time::ZERO,
            trace: device_trace.clone(),
            spans: spans.clone(),
            fault: cfg.fault.clone(),
            injector,
            breaker: CircuitBreaker::new(cfg.fault.breaker_threshold, cfg.fault.quarantine),
            fstats: fstats.clone(),
            balancer: balancer.clone(),
            quarantine_sink: quarantine_sink.clone(),
            stages: stages.clone(),
            drift: drift.clone(),
            flight: flight.clone(),
        };
        let id = engine.add_idle(Box::new(entity));
        debug_assert_eq!(id, device_ids[s]);
    }

    // Traffic sources (offered-load statistics come from the port
    // counters: delivered + dropped).
    let horizon = cfg.warmup + cfg.measure;
    for (p, gen) in sources.into_iter().enumerate() {
        let socket = topo.ports[p].socket;
        let entity = SourceEntity {
            gen,
            port: ports[p].clone(),
            pool: pools[socket].clone(),
            window: cfg.gen_window,
            horizon,
        };
        engine.add(Box::new(entity), Time::ZERO);
    }

    // The supervisor: same watchdog machine as the live runtime's
    // supervisor thread, always on (a clean run just produces an empty
    // log).
    let scfg = cfg.fault.supervisor.clone();
    let sup_state = Rc::new(RefCell::new(SupState {
        monitors: (0..total_workers)
            .map(|_| ShardMonitor::new(scfg.stall_windows))
            .collect(),
        log: SupervisorLog::new(),
    }));
    {
        let entity = SupervisorEntity {
            interval: Time::from_ns(scfg.check_interval.as_ns().max(1)),
            horizon,
            wps,
            health: health.clone(),
            rx: rx_handles.clone(),
            tables: rss_tables.clone(),
            balancer: balancer.clone(),
            hstats: hstats.clone(),
            state: sup_state.clone(),
            flow_registry: flow_registry.clone(),
        };
        engine.add(Box::new(entity), Time::ZERO);
    }

    // The time-series sampler, added last: at equal timestamps it observes
    // the state *after* every worker/device/source has acted.
    if let Some(interval) = cfg.telemetry.sample_interval {
        let entity = SamplerEntity {
            interval,
            horizon,
            inspector: inspector.clone(),
            balancer: balancer.clone(),
            ports: ports.clone(),
            gpus: gpus.clone(),
            prev: Snapshot::default(),
            prev_gpu: vec![TimelineStats::default(); sockets],
            last_t: Time::ZERO,
            samples: samples.clone(),
            slo: slo_tracker.clone(),
        };
        engine.add(Box::new(entity), Time::ZERO);
    }

    // Warmup, snapshot, measure, snapshot.
    engine.run_until(cfg.warmup);
    let start = inspector.snapshot();
    let offered_start: u64 = ports
        .iter()
        .map(|p| {
            let c = p.borrow().counters();
            c.rx_delivered + c.rx_dropped
        })
        .sum();
    engine.run_until(horizon);
    let end = inspector.snapshot();
    let offered_end: u64 = ports
        .iter()
        .map(|p| {
            let c = p.borrow().counters();
            c.rx_delivered + c.rx_dropped
        })
        .sum();
    let rx_dropped: u64 = ports.iter().map(|p| p.borrow().counters().rx_dropped).sum();

    let window = end - start;
    let dur = cfg.measure;
    let mut latency = LatencyHistogram::new();
    for l in &latencies {
        latency.merge(&l.borrow());
    }
    let offered_packets = offered_end - offered_start;

    // Tear the engine down so worker entities flush their telemetry.
    drop(engine);
    let sink = Rc::try_unwrap(sink)
        .ok()
        .expect("telemetry sink uniquely owned after engine teardown")
        .into_inner();
    let elements = merge_profiles(sink.profiles);
    let mut trace: Vec<TraceEvent> = sink.traces.into_iter().flatten().collect();
    if let Some(dt) = device_trace {
        trace.extend(
            Rc::try_unwrap(dt)
                .expect("device trace uniquely owned after engine teardown")
                .into_inner()
                .into_events(),
        );
    }
    trace.sort_by_key(|e| e.t);
    let samples = Rc::try_unwrap(samples)
        .expect("sample vector uniquely owned after engine teardown")
        .into_inner();
    let mut quarantines = Rc::try_unwrap(quarantine_sink)
        .map(RefCell::into_inner)
        .unwrap_or_else(|_| panic!("quarantine sink uniquely owned after engine teardown"));
    quarantines.sort_by_key(|(start, _)| *start);
    let tx_capture = capture_sink
        .map(|c| {
            Rc::try_unwrap(c)
                .map(RefCell::into_inner)
                .unwrap_or_else(|_| panic!("capture sink uniquely owned after engine teardown"))
        })
        .unwrap_or_default();

    // Self-healing loss accounting: whatever a dead shard left behind —
    // packets still queued in its RX rings and completions it never
    // reaped — is attributed loss, mirroring the live teardown.
    let sup_state = Rc::try_unwrap(sup_state)
        .map(RefCell::into_inner)
        .unwrap_or_else(|_| panic!("supervisor state uniquely owned after engine teardown"));
    let states: Vec<WorkerState> = sup_state.monitors.iter().map(ShardMonitor::state).collect();
    let mut lost_ring: u64 = 0;
    let mut lost_flight: u64 = 0;
    for (w, st) in states.iter().enumerate() {
        if *st != WorkerState::Dead {
            continue;
        }
        lost_ring += rx_handles[w].iter().map(|q| q.len() as u64).sum::<u64>();
        while let Some(done) = completion_qs[w].pop() {
            lost_flight += done.batch.len() as u64;
        }
    }
    if lost_ring > 0 {
        HealthStats::add(&hstats.lost_in_ring, lost_ring);
    }
    if lost_flight > 0 {
        HealthStats::add(&hstats.lost_in_flight, lost_flight);
    }
    let health = HealthReport {
        states,
        log: sup_state.log,
        stats: hstats.snapshot(),
    };

    let tx_mpps = window.tx_packets as f64 / dur.as_secs_f64() / 1e6;
    // Each `lock()` gets its own statement: temporaries in struct-literal
    // field initializers live until the end of the whole literal, so two
    // guards in one literal would deadlock the non-reentrant mutex.
    balancer.lock().flush_decision_clock(end.tx_packets);
    let final_w = balancer.lock().offload_fraction();
    let decisions = balancer.lock().take_audit_log();
    RunReport {
        duration: dur,
        tx_gbps: window.tx_frame_bits as f64 / dur.as_secs_f64() / 1e9,
        tx_packets: window.tx_packets,
        offered_packets,
        offered_gbps,
        rx_dropped,
        window,
        slo: slo_tracker.map(|tr| tr.borrow().report(latency.percentile_ns(99.0), tx_mpps)),
        latency,
        final_w,
        gpu: gpus.iter().map(|g| g.borrow().stats()).collect(),
        elements,
        samples,
        trace,
        totals: end,
        faults: crate::fault::FaultReport {
            snapshot: fstats.snapshot(),
            quarantines,
        },
        tx_capture,
        stages: stages.map(|s| {
            Rc::try_unwrap(s)
                .map(RefCell::into_inner)
                .unwrap_or_else(|_| panic!("stage profiles uniquely owned after engine teardown"))
        }),
        drift: drift.map(|d| d.borrow().report()),
        decisions,
        flight: flight.map(|f| f.dumps()).unwrap_or_default(),
        health,
        flows: flow_registry.report(),
    }
}
