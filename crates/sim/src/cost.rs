//! The calibrated cost model.
//!
//! Every action the framework simulates — element dispatch, batch allocation,
//! RX/TX bursts, offload queue synchronization, PCIe copies, kernel launches —
//! charges virtual time according to the constants here. The constants are
//! calibrated (see `EXPERIMENTS.md`) so that the reproduced figures land near
//! the EuroSys'15 paper's testbed numbers: dual 2.6 GHz Sandy Bridge Xeons,
//! 8x10 GbE, 2x GTX 680.
//!
//! CPU-side costs are expressed in **cycles**; device-side costs in
//! nanoseconds, because the accelerator model is bandwidth/latency based
//! rather than cycle-accurate.

use crate::time::Time;

/// Per-packet CPU compute cost of an element: `fixed + per_byte * len`.
///
/// This is the load an element puts on the worker core *in addition to* the
/// framework's own dispatch overheads.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CpuProfile {
    /// Cycles charged for every packet regardless of size.
    pub fixed_cycles: u64,
    /// Cycles charged per payload byte the element touches.
    pub cycles_per_byte: f64,
}

impl CpuProfile {
    /// A profile with only a fixed per-packet cost.
    pub const fn fixed(fixed_cycles: u64) -> CpuProfile {
        CpuProfile {
            fixed_cycles,
            cycles_per_byte: 0.0,
        }
    }

    /// Cycles charged for one packet of `len` payload bytes.
    pub fn cycles(&self, len: usize) -> u64 {
        self.fixed_cycles + (self.cycles_per_byte * len as f64) as u64
    }
}

/// Per-item device compute cost of an offloaded kernel.
///
/// The device divides aggregate work across its parallel lanes; see
/// [`GpuCostModel::kernel_time`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GpuProfile {
    /// Nanoseconds of single-lane work per item regardless of size.
    pub fixed_ns: f64,
    /// Nanoseconds of single-lane work per byte of item payload.
    pub ns_per_byte: f64,
}

impl GpuProfile {
    /// Single-lane nanoseconds for one item of `len` bytes.
    pub fn item_ns(&self, len: usize) -> f64 {
        self.fixed_ns + self.ns_per_byte * len as f64
    }
}

/// Timing model of one accelerator (GPU) device.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuCostModel {
    /// Fixed kernel launch overhead (driver + queue + scheduling), per launch.
    pub kernel_launch: Time,
    /// Number of items the device effectively processes in parallel.
    ///
    /// This folds SM count, warp efficiency, and memory-level parallelism
    /// into one effective width (the GTX 680 has 1536 CUDA cores; effective
    /// parallel speedup for irregular packet workloads is far lower).
    pub parallel_lanes: u32,
    /// Fixed per-DMA-transaction latency (descriptor setup + PCIe round trip).
    pub copy_latency: Time,
    /// Effective host-to-device copy bandwidth, bytes per second.
    pub h2d_bytes_per_sec: f64,
    /// Effective device-to-host copy bandwidth, bytes per second.
    pub d2h_bytes_per_sec: f64,
}

impl GpuCostModel {
    /// Wall time of a kernel over `items` with the given per-item lane times.
    ///
    /// `total_lane_ns` is the sum over items of [`GpuProfile::item_ns`]; the
    /// device spreads it across `parallel_lanes`, and pays the launch
    /// overhead once.
    pub fn kernel_time(&self, total_lane_ns: f64) -> Time {
        let ns = total_lane_ns / self.parallel_lanes as f64;
        self.kernel_launch + Time::from_ps((ns * 1_000.0).round() as u64)
    }

    /// Wall time of a host-to-device copy of `bytes`.
    pub fn h2d_time(&self, bytes: usize) -> Time {
        self.copy_time(bytes, self.h2d_bytes_per_sec)
    }

    /// Wall time of a device-to-host copy of `bytes`.
    pub fn d2h_time(&self, bytes: usize) -> Time {
        self.copy_time(bytes, self.d2h_bytes_per_sec)
    }

    fn copy_time(&self, bytes: usize, bw: f64) -> Time {
        let secs = bytes as f64 / bw;
        self.copy_latency + Time::from_secs_f64(secs)
    }
}

/// All framework-level calibrated constants.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Worker core clock in GHz (paper: Xeon E5-2670, 2.6 GHz).
    pub cpu_ghz: f64,

    // --- Modular pipeline overheads (cycles) ---
    /// Per element invocation per batch: virtual dispatch, context setup.
    pub element_call: u64,
    /// Per packet inside a per-packet element's iteration loop.
    pub per_packet_dispatch: u64,
    /// Allocating a packet-batch object in the IO loop (per-core mempool
    /// cache hit: cheap).
    pub batch_alloc: u64,
    /// Releasing a batch at the pipeline end (cache return: cheap).
    pub batch_free: u64,
    /// Allocating a batch mid-pipeline for a split (shared mempool path +
    /// metadata initialization; the Figure 1 "memory management" cost).
    pub split_batch_alloc: u64,
    /// Releasing a batch object torn down by a split.
    pub split_batch_free: u64,
    /// Copying one packet slot (pointer + result + annotations) into another
    /// batch during a split.
    pub split_copy_slot: u64,
    /// Masking one packet slot out of a reused batch (branch prediction).
    pub mask_slot: u64,
    /// Per-packet result scan at multi-output elements (the framework must
    /// inspect every packet's chosen edge before reorganizing batches).
    pub route_scan_per_packet: u64,
    /// Baseline cost of one IO-loop iteration (scheduling, queue checks).
    pub sched_iteration: u64,

    // --- Packet IO (cycles) ---
    /// Fixed cost of one RX burst (PCIe doorbell, descriptor ring scan).
    pub rx_burst_fixed: u64,
    /// Per packet received in a burst (descriptor + prefetch + mbuf setup).
    pub rx_per_packet: u64,
    /// Fixed cost of one TX burst.
    pub tx_burst_fixed: u64,
    /// Per packet transmitted in a burst.
    pub tx_per_packet: u64,
    /// Per packet dropped (buffer release).
    pub drop_per_packet: u64,

    // --- Offloading path (cycles unless noted) ---
    /// Worker-side cost to enqueue an offload task (lock-free ring + wake).
    pub offload_enqueue: u64,
    /// Device-thread cost to dequeue one offload task.
    pub offload_dequeue: u64,
    /// Device-thread per-task driver interaction (stream query polling and
    /// the CUDA runtime's internal locking the paper profiles at 20-30 % of
    /// the device-thread core).
    pub device_task_fixed: u64,
    /// Device-thread per-packet preprocessing (gather into datablock).
    pub preproc_per_packet: u64,
    /// Device-thread per-byte preprocessing (payload copy into datablock).
    pub preproc_per_byte: f64,
    /// Device-thread per-packet postprocessing (scatter results back).
    pub postproc_per_packet: u64,
    /// Device-thread per-byte postprocessing.
    pub postproc_per_byte: f64,
    /// Worker-side cost to reap one completion callback.
    pub completion_check: u64,
    /// Load-balancer decision cost per batch.
    pub lb_decide: u64,

    /// Timing model of each attached accelerator.
    pub gpu: GpuCostModel,
}

impl CostModel {
    /// Converts a cycle count into virtual time at the modeled clock.
    pub fn cycles(&self, n: u64) -> Time {
        // 1 cycle = 1000 / GHz picoseconds.
        Time::from_ps(((n as f64) * 1_000.0 / self.cpu_ghz).round() as u64)
    }

    /// Converts fractional cycles into virtual time.
    pub fn cycles_f64(&self, n: f64) -> Time {
        Time::from_ps((n * 1_000.0 / self.cpu_ghz).round() as u64)
    }

    /// The paper-calibrated default model (see `EXPERIMENTS.md` §Calibration).
    pub fn paper_default() -> CostModel {
        CostModel {
            cpu_ghz: 2.6,
            element_call: 110,
            per_packet_dispatch: 18,
            batch_alloc: 450,
            batch_free: 300,
            split_batch_alloc: 3800,
            split_batch_free: 2100,
            split_copy_slot: 16,
            mask_slot: 3,
            route_scan_per_packet: 38,
            sched_iteration: 80,
            rx_burst_fixed: 220,
            rx_per_packet: 33,
            tx_burst_fixed: 180,
            tx_per_packet: 37,
            drop_per_packet: 25,
            offload_enqueue: 320,
            offload_dequeue: 260,
            device_task_fixed: 1900,
            preproc_per_packet: 35,
            preproc_per_byte: 0.22,
            postproc_per_packet: 30,
            postproc_per_byte: 0.22,
            completion_check: 140,
            lb_decide: 30,
            gpu: GpuCostModel {
                kernel_launch: Time::from_us(14),
                parallel_lanes: 1024,
                copy_latency: Time::from_us(9),
                h2d_bytes_per_sec: 2.4e9,
                d2h_bytes_per_sec: 2.2e9,
            },
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_convert_at_clock_rate() {
        let m = CostModel {
            cpu_ghz: 2.0,
            ..CostModel::paper_default()
        };
        // 2 GHz => 1 cycle = 500 ps.
        assert_eq!(m.cycles(1), Time::from_ps(500));
        assert_eq!(m.cycles(2_000_000_000), Time::from_secs(1));
    }

    #[test]
    fn cpu_profile_scales_with_length() {
        let p = CpuProfile {
            fixed_cycles: 100,
            cycles_per_byte: 2.0,
        };
        assert_eq!(p.cycles(0), 100);
        assert_eq!(p.cycles(64), 228);
        assert_eq!(CpuProfile::fixed(7).cycles(1500), 7);
    }

    #[test]
    fn kernel_time_amortizes_launch_over_lanes() {
        let gpu = CostModel::paper_default().gpu;
        let one = gpu.kernel_time(100.0);
        let many = gpu.kernel_time(100.0 * 2048.0);
        // 2048 items cost far less than 2048 separate launches.
        assert!(many < one * 2048);
        // But strictly more than one item.
        assert!(many > one);
    }

    #[test]
    fn copy_time_is_latency_plus_bandwidth() {
        let gpu = GpuCostModel {
            kernel_launch: Time::ZERO,
            parallel_lanes: 1,
            copy_latency: Time::from_us(10),
            h2d_bytes_per_sec: 1e9,
            d2h_bytes_per_sec: 2e9,
        };
        assert_eq!(
            gpu.h2d_time(1_000_000),
            Time::from_us(10) + Time::from_ms(1)
        );
        assert_eq!(
            gpu.d2h_time(1_000_000),
            Time::from_us(10) + Time::from_us(500)
        );
    }

    #[test]
    fn default_model_is_paper_model() {
        assert_eq!(CostModel::default(), CostModel::paper_default());
    }
}
