//! Self-healing plane integration: worker supervision, RSS re-steering,
//! SLO-coupled overload shedding, and the replayable quarantine audit
//! trail, driven end-to-end through the live runtime's seeded drills.
//!
//! The heavy chaos gate at the bottom (`chaos_recovery_gate`) is
//! `#[ignore]`d for regular runs; CI invokes it explicitly with
//! `cargo test --release --test self_healing -- --ignored` and uploads
//! the artifacts it writes to `$NBA_CHAOS_DIR` when the gate fails.

use std::time::Duration;

use nba::apps::{pipelines, AppConfig};
use nba::core::audit::{self, AuditConfig, DecisionKind};
use nba::core::element::ComputeMode;
use nba::core::fault::WorkerKill;
use nba::core::lb;
use nba::core::runtime::live::{self, LiveConfig, LiveReport};
use nba::core::runtime::PipelineBuilder;
use nba::core::supervise::TransitionReason;
use nba::core::telemetry::samples_to_jsonl;
use nba::core::{FaultConfig, FaultPlan, ShedConfig, ShedPolicy, WorkerState};
use nba::io::{IpVersion, PayloadFill, SizeDist, TrafficConfig};

/// Fixed workload for the drain-mode tests: every generated packet is
/// delivered exactly once unless the healing plane accounts otherwise.
const BUDGET: u64 = 1200;

fn traffic() -> TrafficConfig {
    TrafficConfig {
        offered_gbps: 10.0,
        size: SizeDist::Fixed(256),
        ip_version: IpVersion::V4,
        flows: 64,
        zipf_alpha: 0.0,
        payload: PayloadFill::Zeros,
        seed: 7,
        ..TrafficConfig::default()
    }
}

fn router() -> PipelineBuilder {
    pipelines::ipv4_router(&AppConfig {
        ports: 4,
        v4_routes: 2048,
        ..AppConfig::default()
    })
}

fn base_cfg(workers: usize) -> LiveConfig {
    LiveConfig {
        workers,
        duration: Duration::from_secs(20), // deadline only; drains in ms
        traffic: traffic(),
        compute: ComputeMode::Full,
        io_threads: 1,
        max_packets: Some(BUDGET),
        drain: true,
        capture: true,
        ..LiveConfig::default()
    }
}

fn kill(worker: u32, at_packet: u64) -> FaultConfig {
    FaultConfig {
        plan: FaultPlan {
            worker_kill: vec![WorkerKill { worker, at_packet }],
            ..FaultPlan::default()
        },
        ..FaultConfig::default()
    }
}

fn run(cfg: &LiveConfig) -> LiveReport {
    live::run_sharded(
        cfg,
        &router(),
        &lb::replicated(|| Box::new(lb::FixedFraction::new(0.5))),
    )
}

/// A fault-free run must lose nothing and never escalate to containment:
/// no crash edges, no respawns, no sheds. Transient Healthy↔Suspect
/// flapping is allowed — on a loaded machine a worker legitimately fails
/// to make progress within one 500 µs watchdog window while its ring
/// holds backlog, and the presumption self-corrects on the next tick.
#[test]
fn clean_run_loses_nothing_and_never_contains() {
    let rep = run(&base_cfg(4));
    assert_eq!(rep.health.stats.total_lost(), 0, "clean run lost packets");
    assert_eq!(rep.health.stats.respawns, 0);
    assert!(
        rep.health
            .log
            .events
            .iter()
            .all(|e| e.reason != TransitionReason::Crash),
        "clean run recorded a crash: {:?}",
        rep.health.log.events
    );
    assert!(rep.health.log.replay().is_ok());
    assert_eq!(rep.health.states.len(), 4);
}

/// Drop-tail at a zero occupancy threshold sheds *every* packet before
/// enqueue — nothing reaches a worker, and every drop is accounted.
#[test]
fn drop_tail_at_zero_threshold_sheds_everything() {
    let mut cfg = base_cfg(2);
    cfg.shed = ShedConfig {
        policy: ShedPolicy::DropTail,
        occupancy: 0.0,
        slo_coupled: false,
    };
    let rep = run(&cfg);
    assert_eq!(rep.health.stats.shed_drop_tail, BUDGET);
    assert!(rep.tx_capture.is_empty(), "shed packets were transmitted");
    assert_eq!(rep.totals.tx_packets, 0);
    assert_eq!(rep.rx_dropped, 0, "shed happens before the ring, not at it");
}

/// The priority policy spares classes 0–1 below full pressure and sheds
/// the best-effort classes 2–3; the split is seed-deterministic and the
/// ledger balances exactly.
#[test]
fn priority_shedding_spares_high_classes_and_balances() {
    let mut cfg = base_cfg(2);
    cfg.shed = ShedConfig {
        policy: ShedPolicy::Priority,
        occupancy: 0.0,
        slo_coupled: false,
    };
    let rep = run(&cfg);
    let shed = rep.health.stats.shed_priority;
    assert!(shed > 0, "no best-effort traffic shed");
    assert!(!rep.tx_capture.is_empty(), "high-priority traffic shed too");
    assert_eq!(
        rep.tx_capture.len() as u64 + shed + rep.totals.dropped,
        BUDGET,
        "shed ledger does not balance"
    );
    assert_eq!(rep.health.stats.shed_drop_tail, 0);
    assert_eq!(rep.health.stats.shed_probabilistic, 0);
}

/// SLO-coupled shedding: an unmeetable throughput floor pushes the
/// burn-rate over 1 at the first reporter window, after which IO threads
/// shed at full pressure instead of queueing more work.
#[test]
fn slo_burn_triggers_shedding() {
    let mut cfg = base_cfg(2);
    cfg.max_packets = None;
    cfg.drain = false;
    cfg.capture = false;
    cfg.duration = Duration::from_millis(150);
    cfg.slo = Some(nba::core::audit::SloConfig {
        latency_ns: None,
        min_mpps: Some(1e9), // unmeetable: every window violates
        error_budget: 0.05,
    });
    cfg.shed = ShedConfig {
        policy: ShedPolicy::DropTail,
        occupancy: 1.0, // occupancy trigger off — only the SLO coupling
        slo_coupled: true,
    };
    let rep = run(&cfg);
    let slo = rep.slo.expect("SLO was configured");
    assert!(!slo.met, "a 1000 Gpps floor cannot be met");
    assert!(
        rep.health.stats.shed_drop_tail > 0,
        "burn-rate never engaged the shedder"
    );
}

/// A kill drill with decision-auditing balancers: the dead shard's
/// balancer records the quarantine (`HealthDown`) and the respawn
/// re-admission (`HealthUp`), and the log replays bit-identically —
/// the same trail the device circuit breaker leaves.
#[test]
fn kill_drill_records_replayable_quarantine_audit() {
    let mut cfg = base_cfg(4);
    cfg.fault = kill(2, 100);
    cfg.audit = AuditConfig {
        decision_capacity: 256,
        ..AuditConfig::default()
    };
    let rep = live::run_sharded(
        &cfg,
        &router(),
        &lb::replicated(|| Box::new(lb::Adaptive::new(lb::AlbConfig::default()))),
    );
    assert_eq!(rep.health.stats.respawns, 1);
    assert!(
        rep.health.log.events.iter().any(|e| e.worker == 2
            && e.to == WorkerState::Dead
            && e.reason == TransitionReason::Crash),
        "no Dead(crash) edge for worker 2"
    );
    assert_eq!(rep.decisions.len(), 4, "one audit log per replica");
    let dead_log = &rep.decisions[2];
    let kinds: Vec<DecisionKind> = dead_log.records.iter().map(|r| r.kind).collect();
    assert!(
        kinds.contains(&DecisionKind::HealthDown),
        "quarantine not recorded in the decision audit: {kinds:?}"
    );
    assert!(
        kinds.contains(&DecisionKind::HealthUp),
        "respawn re-admission not recorded: {kinds:?}"
    );
    let replayed = audit::replay(dead_log).expect("audit log must replay");
    assert!(
        dead_log.bit_eq(&replayed),
        "decision-audit replay diverged from the recorded log"
    );
    // The supervisor's own log replays to the states the report carries.
    let states = rep.health.log.replay().expect("supervisor log must replay");
    for (w, s) in &states {
        assert_eq!(rep.health.states[*w as usize], *s);
    }
}

/// SYN-flood robustness: a conntrack firewall under a 40% one-shot SYN
/// flood with the priority shedder armed. Best-effort classes shed at
/// the IO threads before enqueue, the short embryonic TTL reaps every
/// flood entry that gets in, and no ESTABLISHED connection ever loses
/// its table entry — overload is absorbed by shedding and embryonic
/// expiry, never by displacing tracked state.
#[test]
fn syn_flood_sheds_without_evicting_established() {
    use nba::apps::stateful::FirewallConfig;
    use nba::core::flow::FlowTableConfig;
    use nba::io::gen::L4Proto;

    let mut cfg = base_cfg(2);
    cfg.traffic = TrafficConfig {
        l4: L4Proto::Tcp,
        flows: 48,
        syn_flood_per_mille: 400,
        ..traffic()
    };
    cfg.shed = ShedConfig {
        policy: ShedPolicy::Priority,
        occupancy: 0.0,
        slo_coupled: false,
    };
    let fw = FirewallConfig {
        table: FlowTableConfig {
            capacity: 4096,
            // Established entries effectively never idle out; embryonic
            // ones go after two short epochs — long enough for a legit
            // handshake's second packet, far too short for flood slots.
            ttl_epochs: 1 << 20,
            embryonic_ttl_epochs: 2,
            epoch_pkts: 4,
        },
    };
    let rep = live::run_sharded(
        &cfg,
        &pipelines::conntrack_fw(&fw),
        &lb::replicated(|| Box::new(lb::FixedFraction::new(0.5))),
    );
    let shed = rep.health.stats.shed_priority;
    assert!(shed > 0, "the shedder never engaged under flood");
    assert!(
        !rep.tx_capture.is_empty(),
        "established traffic shed along with the flood"
    );

    let totals = rep
        .flows
        .expect("firewall run carries a flow report")
        .totals();
    assert!(
        totals.evict_embryonic > 0,
        "flood entries were never reaped: {totals:?}"
    );
    assert_eq!(
        totals.evict_idle, 0,
        "an established connection idled out of the table: {totals:?}"
    );
    assert_eq!(totals.evict_death, 0, "no worker died in this drill");
    assert_eq!(
        totals.table_full_drops, 0,
        "the flood displaced table capacity: {totals:?}"
    );
    assert_eq!(
        totals.out_of_state_drops, 0,
        "an established flow lost state mid-connection: {totals:?}"
    );
    // The overload ledger balances exactly: every offered packet was
    // transmitted, shed at IO, or dropped by an element.
    assert_eq!(
        rep.tx_capture.len() as u64 + shed + rep.totals.dropped,
        BUDGET,
        "flood ledger does not balance"
    );
}

/// The CI chaos gate: kill worker 2 of 4 under continuous load, then gate
/// on recovery (respawn observed, shard Healthy again at teardown) and on
/// post-recovery throughput holding at least 70% of the pre-kill rate.
/// Artifacts (supervisor log, flight dumps, time series) are written to
/// `$NBA_CHAOS_DIR` *before* the asserts so a failing run leaves evidence.
#[test]
#[ignore = "heavy chaos drill — CI runs it with --ignored"]
fn chaos_recovery_gate() {
    let mut cfg = base_cfg(4);
    cfg.max_packets = None;
    cfg.drain = false;
    cfg.capture = false;
    cfg.duration = Duration::from_secs(3);
    cfg.fault = kill(2, 20_000);
    let rep = run(&cfg);

    if let Ok(dir) = std::env::var("NBA_CHAOS_DIR") {
        let dir = std::path::Path::new(&dir);
        let _ = std::fs::create_dir_all(dir);
        let _ = std::fs::write(dir.join("supervisor.jsonl"), rep.health.log.to_jsonl());
        let _ = std::fs::write(dir.join("samples.jsonl"), samples_to_jsonl(&rep.samples));
        for (i, dump) in rep.flight.iter().enumerate() {
            let _ = std::fs::write(
                dir.join(format!("flight_{i}_{}.json", dump.reason)),
                dump.to_json(),
            );
        }
    }

    assert_eq!(rep.health.stats.respawns, 1, "worker 2 was not respawned");
    let dead_t = rep
        .health
        .log
        .events
        .iter()
        .find(|e| e.worker == 2 && e.to == WorkerState::Dead)
        .expect("no Dead edge for worker 2")
        .t_ns;
    let recover_t = rep
        .health
        .log
        .events
        .iter()
        .find(|e| e.worker == 2 && e.reason == TransitionReason::Respawn)
        .expect("no Respawn edge for worker 2")
        .t_ns;
    assert!(recover_t >= dead_t);
    assert_eq!(
        rep.health.states[2],
        WorkerState::Healthy,
        "worker 2 never returned to Healthy after the respawn"
    );
    assert!(rep.health.log.replay().is_ok());

    // Throughput gate: windows strictly before the kill vs windows after
    // recovery plus a settle period.
    let mpps = |pred: &dyn Fn(u64) -> bool| {
        let w: Vec<f64> = rep
            .samples
            .iter()
            .filter(|s| pred(s.t.as_ns()))
            .map(|s| s.tx_mpps)
            .collect();
        (!w.is_empty()).then(|| w.iter().sum::<f64>() / w.len() as f64)
    };
    let settle = 100_000_000u64; // 100 ms
    let post = mpps(&|t| t > recover_t + settle).expect("no post-recovery windows sampled");
    // Fall back to the whole-run mean if the kill fired before the first
    // sampler window (fast machines reach 20k packets in under 2 ms).
    let pre = mpps(&|t| t < dead_t).or_else(|| mpps(&|_| true)).unwrap();
    assert!(
        post >= 0.7 * pre,
        "post-recovery throughput {post:.3} Mpps below 70% of pre-kill {pre:.3} Mpps"
    );
}
