//! The decision-audit & SLO plane: explainable balancer decisions, offload
//! stage decomposition, cost-model drift detection, and SLO budget
//! tracking.
//!
//! Three cooperating pieces:
//!
//! * **Decision audit** — every state-mutating balancer update appends a
//!   [`DecisionRecord`] to a bounded [`DecisionLog`]: the observation that
//!   drove it (throughput, latency EWMA, device health, queue depth,
//!   predicted per-packet costs) and the resulting `w` transition. The log
//!   serializes to JSONL with `f64` values encoded as IEEE-754 bit
//!   patterns (hex strings), so [`replay`] can feed the recorded inputs
//!   back through a fresh balancer and reproduce the `w` trajectory
//!   **bit-exactly** — any divergence means the balancer is reading state
//!   the log does not capture.
//! * **Stage decomposition** — the offload span split into the seven
//!   [`OffloadStage`]s with per-stage histograms ([`StageProfiles`],
//!   merged like element histograms) and a [`DriftDetector`] comparing
//!   the cost model's per-stage predictions against measurements; when
//!   the EWMA of the relative error crosses the threshold it names the
//!   stage with the largest accumulated excess so a flight dump can point
//!   at the model term that drifted.
//! * **SLO budget tracker** — declarative latency/throughput budgets
//!   ([`SloConfig`]) burned down window-by-window ([`SloTracker`]); burn
//!   rate 1.0 means the error budget is consumed exactly at the end of
//!   the run, above 1.0 the budget is exhausted early.
//!
//! Everything here is off by default ([`AuditConfig::default`]) so runs
//! that do not opt in are bit-identical to runs before this module
//! existed.

use std::sync::atomic::{AtomicU64, Ordering};

use nba_sim::Time;

use crate::json::{self, Value};
use crate::lb::AlbConfig;
use crate::stats::LatencyHistogram;
use crate::telemetry::{json_escape, json_f64};

// ---------------------------------------------------------------------------
// f64 <-> bit-pattern codec
// ---------------------------------------------------------------------------

/// Encodes an `f64` as its IEEE-754 bit pattern in fixed-width hex. JSON
/// numbers are `f64` in our parser and cannot round-trip arbitrary `u64`
/// payloads, so bit-exact fields travel as strings.
pub fn f64_to_bits_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Decodes [`f64_to_bits_hex`].
pub fn f64_from_bits_hex(s: &str) -> Result<f64, String> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bit pattern {s:?}: {e}"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(Value::Num(n)) => Ok(*n as u64),
        Some(Value::Str(s)) => s.parse().map_err(|e| format!("bad {key}: {e}")),
        _ => Err(format!("missing field {key}")),
    }
}

fn f64_bits_field(v: &Value, key: &str) -> Result<f64, String> {
    match v.get(key) {
        Some(Value::Str(s)) => f64_from_bits_hex(s),
        _ => Err(format!("missing bit-pattern field {key}")),
    }
}

fn bool_field(v: &Value, key: &str) -> Result<bool, String> {
    v.get(key)
        .and_then(Value::as_bool)
        .ok_or_else(|| format!("missing field {key}"))
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing field {key}"))
}

// ---------------------------------------------------------------------------
// Decision audit
// ---------------------------------------------------------------------------

/// What kind of balancer state transition a [`DecisionRecord`] captures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecisionKind {
    /// First observation: the balancer anchored its observation window.
    Init,
    /// An interval elapsed; the throughput sample joined the window.
    Observe,
    /// Window full but the post-move cooldown swallowed the update.
    Hold,
    /// A hill-climb step: `w` moved by ±δ.
    Move,
    /// Quarantine walk-down while the device breaker is open.
    QuarantineStep,
    /// Latency-bound violation forced a step toward the CPU.
    ViolationStep,
    /// The circuit breaker reported the device unhealthy.
    HealthDown,
    /// The circuit breaker re-admitted the device.
    HealthUp,
}

impl DecisionKind {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionKind::Init => "init",
            DecisionKind::Observe => "observe",
            DecisionKind::Hold => "hold",
            DecisionKind::Move => "move",
            DecisionKind::QuarantineStep => "quarantine_step",
            DecisionKind::ViolationStep => "violation_step",
            DecisionKind::HealthDown => "health_down",
            DecisionKind::HealthUp => "health_up",
        }
    }

    fn parse(s: &str) -> Result<DecisionKind, String> {
        Ok(match s {
            "init" => DecisionKind::Init,
            "observe" => DecisionKind::Observe,
            "hold" => DecisionKind::Hold,
            "move" => DecisionKind::Move,
            "quarantine_step" => DecisionKind::QuarantineStep,
            "violation_step" => DecisionKind::ViolationStep,
            "health_down" => DecisionKind::HealthDown,
            "health_up" => DecisionKind::HealthUp,
            other => return Err(format!("unknown decision kind {other:?}")),
        })
    }
}

/// Device-side gauges published to the balancer so its records can say
/// *why* a move was justified, not just that it happened. Purely
/// observational: the balancer never branches on these values.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DecisionContext {
    /// Offload batches queued (pending aggregates + device backlog).
    pub queue_depth: u64,
    /// Device busy fraction in `[0, 1]` since the run started.
    pub gpu_busy: f64,
    /// Predicted CPU cost of the last flushed aggregate, ns per packet.
    pub predicted_cpu_ns_per_pkt: f64,
    /// Predicted device cost of the last flushed aggregate, ns per packet.
    pub predicted_gpu_ns_per_pkt: f64,
}

/// One balancer state transition: the full input vector and the resulting
/// `w` movement. Replay feeds `t`, `total_tx`, `latency_ewma_ns`, and the
/// health transitions back; everything else is explanation payload.
#[derive(Clone, Copy, Debug)]
pub struct DecisionRecord {
    /// Position in the stream (monotonic, including dropped records).
    pub seq: u64,
    /// Balancer-visible time of the update.
    pub t: Time,
    /// Transition kind.
    pub kind: DecisionKind,
    /// Total transmitted packets observed at the tick.
    pub total_tx: u64,
    /// Latency EWMA the balancer held when it updated (ns).
    pub latency_ewma_ns: u64,
    /// Device health the balancer believed at the time.
    pub healthy: bool,
    /// [`DecisionContext`] gauge: offload queue depth.
    pub queue_depth: u64,
    /// [`DecisionContext`] gauge: device busy fraction.
    pub gpu_busy: f64,
    /// [`DecisionContext`] gauge: predicted CPU ns/packet.
    pub predicted_cpu_ns_per_pkt: f64,
    /// [`DecisionContext`] gauge: predicted device ns/packet.
    pub predicted_gpu_ns_per_pkt: f64,
    /// Instantaneous throughput over the elapsed interval (pps; 0 when
    /// the transition did not sample throughput).
    pub thr_pps: f64,
    /// Window average that drove a move (0 when not applicable).
    pub avg_pps: f64,
    /// Previous window average compared against (0 when none).
    pub last_avg_pps: f64,
    /// Hill-climb direction after the transition.
    pub dir: f64,
    /// `w` before the transition.
    pub w_before: f64,
    /// `w` after the transition.
    pub w_after: f64,
}

impl DecisionRecord {
    /// Bit-exact equality: integers compared directly, floats via
    /// [`f64::to_bits`] so `-0.0 != 0.0` and NaNs compare by payload.
    pub fn bit_eq(&self, other: &DecisionRecord) -> bool {
        self.seq == other.seq
            && self.t == other.t
            && self.kind == other.kind
            && self.total_tx == other.total_tx
            && self.latency_ewma_ns == other.latency_ewma_ns
            && self.healthy == other.healthy
            && self.queue_depth == other.queue_depth
            && self.gpu_busy.to_bits() == other.gpu_busy.to_bits()
            && self.predicted_cpu_ns_per_pkt.to_bits() == other.predicted_cpu_ns_per_pkt.to_bits()
            && self.predicted_gpu_ns_per_pkt.to_bits() == other.predicted_gpu_ns_per_pkt.to_bits()
            && self.thr_pps.to_bits() == other.thr_pps.to_bits()
            && self.avg_pps.to_bits() == other.avg_pps.to_bits()
            && self.last_avg_pps.to_bits() == other.last_avg_pps.to_bits()
            && self.dir.to_bits() == other.dir.to_bits()
            && self.w_before.to_bits() == other.w_before.to_bits()
            && self.w_after.to_bits() == other.w_after.to_bits()
    }

    fn to_json_line(self) -> String {
        format!(
            "{{\"seq\":{},\"t_ps\":\"{}\",\"kind\":\"{}\",\"total_tx\":{},\
             \"latency_ewma_ns\":{},\"healthy\":{},\"queue_depth\":{},\
             \"gpu_busy\":\"{}\",\"pred_cpu\":\"{}\",\"pred_gpu\":\"{}\",\
             \"thr\":\"{}\",\"avg\":\"{}\",\"last_avg\":\"{}\",\"dir\":\"{}\",\
             \"w_before\":\"{}\",\"w_after\":\"{}\"}}",
            self.seq,
            self.t.as_ps(),
            self.kind.as_str(),
            self.total_tx,
            self.latency_ewma_ns,
            self.healthy,
            self.queue_depth,
            f64_to_bits_hex(self.gpu_busy),
            f64_to_bits_hex(self.predicted_cpu_ns_per_pkt),
            f64_to_bits_hex(self.predicted_gpu_ns_per_pkt),
            f64_to_bits_hex(self.thr_pps),
            f64_to_bits_hex(self.avg_pps),
            f64_to_bits_hex(self.last_avg_pps),
            f64_to_bits_hex(self.dir),
            f64_to_bits_hex(self.w_before),
            f64_to_bits_hex(self.w_after),
        )
    }

    fn from_json(v: &Value) -> Result<DecisionRecord, String> {
        Ok(DecisionRecord {
            seq: u64_field(v, "seq")?,
            t: Time::from_ps(u64_field(v, "t_ps")?),
            kind: DecisionKind::parse(str_field(v, "kind")?)?,
            total_tx: u64_field(v, "total_tx")?,
            latency_ewma_ns: u64_field(v, "latency_ewma_ns")?,
            healthy: bool_field(v, "healthy")?,
            queue_depth: u64_field(v, "queue_depth")?,
            gpu_busy: f64_bits_field(v, "gpu_busy")?,
            predicted_cpu_ns_per_pkt: f64_bits_field(v, "pred_cpu")?,
            predicted_gpu_ns_per_pkt: f64_bits_field(v, "pred_gpu")?,
            thr_pps: f64_bits_field(v, "thr")?,
            avg_pps: f64_bits_field(v, "avg")?,
            last_avg_pps: f64_bits_field(v, "last_avg")?,
            dir: f64_bits_field(v, "dir")?,
            w_before: f64_bits_field(v, "w_before")?,
            w_after: f64_bits_field(v, "w_after")?,
        })
    }
}

/// A logical decision clock: instead of wall/sim time, updates fire at
/// packet-count milestones (`pkts_per_update` transmitted packets each,
/// capped at `max_updates`). Because both runtimes transmit the same
/// packets under a bounded drain run, the resulting record stream is a
/// pure function of the packet set — the cross-runtime determinism the
/// decision-log conformance tests pin down.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DecisionClock {
    /// Packets per logical update interval.
    pub pkts_per_update: u64,
    /// Total updates to fire over the run (absorbs end-of-run raggedness).
    pub max_updates: u64,
    /// Updates fired so far.
    pub fired: u64,
}

impl DecisionClock {
    /// A clock firing every `pkts_per_update` packets, `max_updates` times.
    ///
    /// # Panics
    ///
    /// Panics if `pkts_per_update` is zero.
    pub fn new(pkts_per_update: u64, max_updates: u64) -> DecisionClock {
        assert!(pkts_per_update > 0, "pkts_per_update must be positive");
        DecisionClock {
            pkts_per_update,
            max_updates,
            fired: 0,
        }
    }
}

/// A bounded, replayable stream of [`DecisionRecord`]s plus the header
/// needed to reconstruct the balancer that produced it. Bounded by keeping
/// the **first** `capacity` records — replay needs a contiguous prefix, so
/// overflow drops the tail (counted in `dropped`), never the head.
#[derive(Clone, Debug)]
pub struct DecisionLog {
    /// Balancer name (`adaptive`, `latency-bounded`).
    pub balancer: String,
    /// The configuration the balancer ran with.
    pub cfg: AlbConfig,
    /// `w` at the moment auditing was enabled.
    pub initial_w: f64,
    /// Latency ceiling when the balancer was latency-bounded.
    pub bound_ns: Option<u64>,
    /// Logical decision clock `(pkts_per_update, max_updates)` if one
    /// replaced the time-based interval.
    pub clock: Option<(u64, u64)>,
    /// Record capacity (0 disables recording).
    pub capacity: usize,
    /// The recorded transitions, oldest first.
    pub records: Vec<DecisionRecord>,
    /// Records dropped after `capacity` was reached.
    pub dropped: u64,
}

impl DecisionLog {
    /// An empty log for a balancer with the given header.
    pub fn new(balancer: &str, cfg: AlbConfig, initial_w: f64, capacity: usize) -> DecisionLog {
        DecisionLog {
            balancer: balancer.to_owned(),
            cfg,
            initial_w,
            bound_ns: None,
            clock: None,
            capacity,
            records: Vec::new(),
            dropped: 0,
        }
    }

    /// The sequence number the next pushed record will carry.
    pub fn next_seq(&self) -> u64 {
        self.records.len() as u64 + self.dropped
    }

    /// Appends a record, dropping it (but counting) past capacity.
    pub fn push(&mut self, rec: DecisionRecord) {
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// Bit-exact stream equality (header fields ignored).
    pub fn bit_eq(&self, other: &DecisionLog) -> bool {
        self.records.len() == other.records.len()
            && self
                .records
                .iter()
                .zip(&other.records)
                .all(|(a, b)| a.bit_eq(b))
    }

    /// Serializes the log as JSONL: one header line, one line per record.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"nba-decision-log\",\"balancer\":\"{}\",\"capacity\":{},\
             \"dropped\":{},\"initial_w\":\"{}\",\"bound_ns\":{},\
             \"clock_pkts\":{},\"clock_max\":{},\"cfg\":{{\"delta\":\"{}\",\
             \"update_interval_ps\":\"{}\",\"avg_window\":{},\"min_wait\":{},\
             \"max_wait\":{},\"initial_w\":\"{}\"}}}}\n",
            json_escape(&self.balancer),
            self.capacity,
            self.dropped,
            f64_to_bits_hex(self.initial_w),
            self.bound_ns.map_or("null".to_owned(), |b| b.to_string()),
            self.clock.map_or("null".to_owned(), |c| c.0.to_string()),
            self.clock.map_or("null".to_owned(), |c| c.1.to_string()),
            f64_to_bits_hex(self.cfg.delta),
            self.cfg.update_interval.as_ps(),
            self.cfg.avg_window,
            self.cfg.min_wait,
            self.cfg.max_wait,
            f64_to_bits_hex(self.cfg.initial_w),
        ));
        for rec in &self.records {
            out.push_str(&rec.to_json_line());
            out.push('\n');
        }
        out
    }

    /// Parses [`DecisionLog::to_jsonl`] output.
    pub fn from_jsonl(s: &str) -> Result<DecisionLog, String> {
        let mut lines = s.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or("empty decision log")?;
        let h = json::parse(header).map_err(|e| format!("bad header: {e:?}"))?;
        if str_field(&h, "type")? != "nba-decision-log" {
            return Err("not a decision log (missing type header)".to_owned());
        }
        let cfg_v = h.get("cfg").ok_or("missing cfg")?;
        let cfg = AlbConfig {
            delta: f64_bits_field(cfg_v, "delta")?,
            update_interval: Time::from_ps(u64_field(cfg_v, "update_interval_ps")?),
            avg_window: u64_field(cfg_v, "avg_window")? as u32,
            min_wait: u64_field(cfg_v, "min_wait")? as u32,
            max_wait: u64_field(cfg_v, "max_wait")? as u32,
            initial_w: f64_bits_field(cfg_v, "initial_w")?,
        };
        let clock = match (u64_field(&h, "clock_pkts"), u64_field(&h, "clock_max")) {
            (Ok(p), Ok(m)) => Some((p, m)),
            _ => None,
        };
        let mut log = DecisionLog {
            balancer: str_field(&h, "balancer")?.to_owned(),
            cfg,
            initial_w: f64_bits_field(&h, "initial_w")?,
            bound_ns: u64_field(&h, "bound_ns").ok(),
            clock,
            capacity: u64_field(&h, "capacity")? as usize,
            records: Vec::new(),
            dropped: u64_field(&h, "dropped")?,
        };
        for line in lines {
            let v = json::parse(line).map_err(|e| format!("bad record: {e:?}"))?;
            log.records.push(DecisionRecord::from_json(&v)?);
        }
        Ok(log)
    }

    /// Renders the log as a human-readable timeline, one line per record:
    /// what moved, and the observation that justified it.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "decision log: balancer={} records={} dropped={}",
            self.balancer,
            self.records.len(),
            self.dropped
        ));
        if let Some((pkts, max)) = self.clock {
            out.push_str(&format!(" clock={pkts}pkts x{max}"));
        }
        if let Some(bound) = self.bound_ns {
            out.push_str(&format!(" latency_bound={}", fmt_ns(bound as f64)));
        }
        out.push('\n');
        for r in &self.records {
            out.push_str(&explain_record(r));
            out.push('\n');
        }
        out
    }
}

fn fmt_mpps(pps: f64) -> String {
    format!("{:.3} Mpps", pps / 1e6)
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.1}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

fn explain_record(r: &DecisionRecord) -> String {
    let t = format!("t={:.4}s", r.t.as_secs_f64());
    let ctx = if r.predicted_cpu_ns_per_pkt > 0.0 || r.predicted_gpu_ns_per_pkt > 0.0 {
        let (cheaper, by) = if r.predicted_gpu_ns_per_pkt <= r.predicted_cpu_ns_per_pkt {
            (
                "gpu",
                r.predicted_cpu_ns_per_pkt - r.predicted_gpu_ns_per_pkt,
            )
        } else {
            (
                "cpu",
                r.predicted_gpu_ns_per_pkt - r.predicted_cpu_ns_per_pkt,
            )
        };
        format!(
            "; gpu_busy={:.0}% queue={} predicted {} cheaper by {}/pkt",
            r.gpu_busy * 100.0,
            r.queue_depth,
            cheaper,
            fmt_ns(by),
        )
    } else {
        String::new()
    };
    match r.kind {
        DecisionKind::Init => format!(
            "{t}: init at w={:.3} — first observation anchored (tx={})",
            r.w_after, r.total_tx
        ),
        DecisionKind::Observe => format!(
            "{t}: observe thr {} (window filling, w={:.3}){ctx}",
            fmt_mpps(r.thr_pps),
            r.w_after
        ),
        DecisionKind::Hold => format!(
            "{t}: hold at w={:.3} — avg {} inside post-move cooldown{ctx}",
            r.w_after,
            fmt_mpps(r.avg_pps)
        ),
        DecisionKind::Move => {
            let why = if r.last_avg_pps == 0.0 {
                format!("first window avg {}", fmt_mpps(r.avg_pps))
            } else if r.avg_pps < r.last_avg_pps {
                format!(
                    "avg {} < last {} — direction flipped",
                    fmt_mpps(r.avg_pps),
                    fmt_mpps(r.last_avg_pps)
                )
            } else {
                format!(
                    "avg {} >= last {} — kept direction",
                    fmt_mpps(r.avg_pps),
                    fmt_mpps(r.last_avg_pps)
                )
            };
            format!(
                "{t}: w {:.3}->{:.3} because {} (dir {}, latency {}){ctx}",
                r.w_before,
                r.w_after,
                why,
                if r.dir > 0.0 { "+" } else { "-" },
                fmt_ns(r.latency_ewma_ns as f64),
            )
        }
        DecisionKind::QuarantineStep => format!(
            "{t}: quarantine walk-down w {:.3}->{:.3} (device unhealthy)",
            r.w_before, r.w_after
        ),
        DecisionKind::ViolationStep => format!(
            "{t}: latency {} over bound — forced step w {:.3}->{:.3}",
            fmt_ns(r.latency_ewma_ns as f64),
            r.w_before,
            r.w_after
        ),
        DecisionKind::HealthDown => format!("{t}: device breaker OPEN — quarantine begins"),
        DecisionKind::HealthUp => format!("{t}: device breaker re-admitted the device"),
    }
}

/// Replays a decision log through a freshly constructed balancer and
/// returns the log the replayed balancer produced. Bit-exact replay means
/// `log.bit_eq(&replay(log)?)`.
pub fn replay(log: &DecisionLog) -> Result<DecisionLog, String> {
    use crate::lb::{Adaptive, LatencyBounded, LoadBalancer};
    let cfg = AlbConfig {
        initial_w: log.initial_w,
        ..log.cfg.clone()
    };
    let mut lb: Box<dyn LoadBalancer> = match log.bound_ns {
        Some(bound) => Box::new(LatencyBounded::new(
            Adaptive::new(cfg),
            Time::from_ns(bound),
        )),
        None => Box::new(Adaptive::new(cfg)),
    };
    lb.enable_audit(log.records.len().max(1));
    for rec in &log.records {
        match rec.kind {
            // A health edge is injected asynchronously (the device breaker
            // or the worker supervisor), so the observation fields it
            // snapshots did not come from a prior recorded tick — restore
            // them from the record itself before replaying the edge.
            DecisionKind::HealthDown | DecisionKind::HealthUp => {
                lb.set_decision_context(DecisionContext {
                    queue_depth: rec.queue_depth,
                    gpu_busy: rec.gpu_busy,
                    predicted_cpu_ns_per_pkt: rec.predicted_cpu_ns_per_pkt,
                    predicted_gpu_ns_per_pkt: rec.predicted_gpu_ns_per_pkt,
                });
                lb.observe_latency(rec.latency_ewma_ns);
                lb.observe_device_health(rec.kind == DecisionKind::HealthUp);
            }
            _ => {
                lb.set_decision_context(DecisionContext {
                    queue_depth: rec.queue_depth,
                    gpu_busy: rec.gpu_busy,
                    predicted_cpu_ns_per_pkt: rec.predicted_cpu_ns_per_pkt,
                    predicted_gpu_ns_per_pkt: rec.predicted_gpu_ns_per_pkt,
                });
                lb.observe_latency(rec.latency_ewma_ns);
                lb.tick(rec.t, rec.total_tx);
            }
        }
    }
    lb.take_audit_log()
        .ok_or_else(|| "balancer does not support audit".to_owned())
}

// ---------------------------------------------------------------------------
// Offload stage decomposition
// ---------------------------------------------------------------------------

/// The seven sub-stages of one offloaded aggregate, in pipeline order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OffloadStage {
    /// Batch sat in the device command queue before its aggregate flushed.
    EnqueueWait,
    /// Datablock gather (preprocessing) into the contiguous input buffer.
    Gather,
    /// Host-to-device copy.
    CopyIn,
    /// Submission overhead: admission, retry backoff, watchdog waits.
    Launch,
    /// Kernel execution.
    Compute,
    /// Device-to-host copy.
    CopyOut,
    /// Datablock scatter (postprocessing) back into the batches.
    Scatter,
}

impl OffloadStage {
    /// All stages in pipeline order (index = array position).
    pub const ALL: [OffloadStage; 7] = [
        OffloadStage::EnqueueWait,
        OffloadStage::Gather,
        OffloadStage::CopyIn,
        OffloadStage::Launch,
        OffloadStage::Compute,
        OffloadStage::CopyOut,
        OffloadStage::Scatter,
    ];

    /// Stable wire/metric name.
    pub fn as_str(self) -> &'static str {
        match self {
            OffloadStage::EnqueueWait => "enqueue_wait",
            OffloadStage::Gather => "gather",
            OffloadStage::CopyIn => "copy_in",
            OffloadStage::Launch => "launch",
            OffloadStage::Compute => "compute",
            OffloadStage::CopyOut => "copy_out",
            OffloadStage::Scatter => "scatter",
        }
    }

    /// Index into per-stage arrays.
    pub fn index(self) -> usize {
        OffloadStage::ALL.iter().position(|s| *s == self).unwrap()
    }
}

/// Per-stage latency histograms plus exact totals, merged across shards
/// exactly like per-element histograms.
#[derive(Clone, Debug)]
pub struct StageProfiles {
    /// One histogram per [`OffloadStage::ALL`] entry.
    pub hist: [LatencyHistogram; 7],
    /// Exact per-stage nanosecond totals (histograms bucket-quantize).
    pub total_ns: [u64; 7],
    /// Offload tasks observed (aggregates, not batches).
    pub tasks: u64,
}

impl Default for StageProfiles {
    fn default() -> Self {
        StageProfiles::new()
    }
}

impl StageProfiles {
    /// Empty profiles.
    pub fn new() -> StageProfiles {
        StageProfiles {
            hist: std::array::from_fn(|_| LatencyHistogram::new()),
            total_ns: [0; 7],
            tasks: 0,
        }
    }

    /// Records one stage sample.
    pub fn record(&mut self, stage: OffloadStage, ns: u64) {
        let i = stage.index();
        self.hist[i].record_ns(ns);
        self.total_ns[i] = self.total_ns[i].saturating_add(ns);
    }

    /// Merges another shard's profiles into this one.
    pub fn merge(&mut self, other: &StageProfiles) {
        for i in 0..7 {
            self.hist[i].merge(&other.hist[i]);
            self.total_ns[i] = self.total_ns[i].saturating_add(other.total_ns[i]);
        }
        self.tasks += other.tasks;
    }

    /// Mean nanoseconds per sample for one stage (0 when unsampled).
    pub fn mean_ns(&self, stage: OffloadStage) -> f64 {
        let i = stage.index();
        let n = self.hist[i].count();
        if n == 0 {
            0.0
        } else {
            self.total_ns[i] as f64 / n as f64
        }
    }

    /// True when no stage recorded anything.
    pub fn is_empty(&self) -> bool {
        self.hist.iter().all(|h| h.count() == 0)
    }
}

// ---------------------------------------------------------------------------
// Cost-model drift detection
// ---------------------------------------------------------------------------

/// Drift detector tuning.
#[derive(Clone, Debug, PartialEq)]
pub struct DriftConfig {
    /// Relative-error EWMA level that raises the drift event. The default
    /// leaves headroom for engine queueing (measured stage times include
    /// copy/kernel engine contention the per-task prediction does not).
    pub threshold: f64,
    /// Tasks to observe before the detector may fire (EWMA warm-up).
    pub min_tasks: u64,
    /// EWMA smoothing factor for the relative error.
    pub alpha: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            threshold: 0.5,
            min_tasks: 16,
            alpha: 0.2,
        }
    }
}

/// Compares the cost model's per-stage predictions against measured stage
/// times, task by task, and fires once when the smoothed relative error
/// crosses the threshold — naming the stage that accumulated the most
/// unpredicted time.
#[derive(Clone, Debug)]
pub struct DriftDetector {
    cfg: DriftConfig,
    tasks: u64,
    ewma: f64,
    /// Cumulative positive excess (measured − predicted) per stage, ns.
    excess_ns: [f64; 7],
    fired: bool,
    events: u64,
}

impl DriftDetector {
    /// A fresh detector.
    pub fn new(cfg: DriftConfig) -> DriftDetector {
        DriftDetector {
            cfg,
            tasks: 0,
            ewma: 0.0,
            excess_ns: [0.0; 7],
            fired: false,
            events: 0,
        }
    }

    /// Feeds one task's measured and predicted per-stage times (ns,
    /// indexed by [`OffloadStage::ALL`]). `EnqueueWait` is excluded from
    /// the error — queueing is load, not model error. Returns the named
    /// offending stage the first time the threshold is crossed.
    pub fn observe(
        &mut self,
        measured_ns: &[u64; 7],
        predicted_ns: &[u64; 7],
    ) -> Option<OffloadStage> {
        let skip = OffloadStage::EnqueueWait.index();
        let mut m_sum = 0u64;
        let mut p_sum = 0u64;
        for i in 0..7 {
            if i == skip {
                continue;
            }
            m_sum += measured_ns[i];
            p_sum += predicted_ns[i];
            let excess = measured_ns[i].saturating_sub(predicted_ns[i]);
            self.excess_ns[i] += excess as f64;
        }
        if p_sum == 0 {
            return None;
        }
        self.tasks += 1;
        let rel = (m_sum as f64 - p_sum as f64).abs() / p_sum as f64;
        self.ewma = if self.tasks == 1 {
            rel
        } else {
            self.cfg.alpha * rel + (1.0 - self.cfg.alpha) * self.ewma
        };
        if !self.fired && self.tasks >= self.cfg.min_tasks && self.ewma > self.cfg.threshold {
            self.fired = true;
            self.events += 1;
            return Some(self.worst_stage().map_or(OffloadStage::Compute, |(s, _)| s));
        }
        None
    }

    /// Current smoothed relative error.
    pub fn rel_err(&self) -> f64 {
        self.ewma
    }

    /// Tasks observed.
    pub fn tasks(&self) -> u64 {
        self.tasks
    }

    /// Drift events raised.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The stage with the largest accumulated unpredicted time.
    pub fn worst_stage(&self) -> Option<(OffloadStage, f64)> {
        let (mut best, mut best_ns) = (None, 0.0f64);
        for (i, &ns) in self.excess_ns.iter().enumerate() {
            if ns > best_ns {
                best_ns = ns;
                best = Some(OffloadStage::ALL[i]);
            }
        }
        best.map(|s| (s, best_ns))
    }

    /// Summarizes the detector for reports.
    pub fn report(&self) -> DriftReport {
        DriftReport {
            tasks: self.tasks,
            rel_err: self.ewma,
            events: self.events,
            worst_stage: self.worst_stage().map(|(s, _)| s.as_str().to_owned()),
            worst_excess_ns: self.worst_stage().map_or(0.0, |(_, ns)| ns),
        }
    }
}

/// Drift summary carried on run reports.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DriftReport {
    /// Tasks the detector scored.
    pub tasks: u64,
    /// Final smoothed relative error.
    pub rel_err: f64,
    /// Drift events raised (0 or 1 per run: the detector latches).
    pub events: u64,
    /// Stage with the largest accumulated excess, if any.
    pub worst_stage: Option<String>,
    /// That stage's accumulated unpredicted nanoseconds.
    pub worst_excess_ns: f64,
}

/// Lock-free drift gauges for the live stats endpoint: the device thread
/// publishes, `/status` and `/metrics` read.
#[derive(Debug, Default)]
pub struct DriftGauge {
    /// Drift events raised so far.
    pub events: AtomicU64,
    /// Bit pattern of the latest smoothed relative error.
    pub rel_err_bits: AtomicU64,
    /// `OffloadStage` index + 1 of the worst stage (0 = none yet).
    pub stage_plus_one: AtomicU64,
}

impl DriftGauge {
    /// Publishes the detector's current state.
    pub fn publish(&self, det: &DriftDetector) {
        self.events.store(det.events(), Ordering::Relaxed);
        self.rel_err_bits
            .store(det.rel_err().to_bits(), Ordering::Relaxed);
        if let Some((s, _)) = det.worst_stage() {
            self.stage_plus_one
                .store(s.index() as u64 + 1, Ordering::Relaxed);
        }
    }

    /// Reads `(events, rel_err, worst_stage)`.
    pub fn snapshot(&self) -> (u64, f64, Option<OffloadStage>) {
        let events = self.events.load(Ordering::Relaxed);
        let rel = f64::from_bits(self.rel_err_bits.load(Ordering::Relaxed));
        let stage = match self.stage_plus_one.load(Ordering::Relaxed) {
            0 => None,
            i => Some(OffloadStage::ALL[(i - 1) as usize % 7]),
        };
        (events, rel, stage)
    }
}

// ---------------------------------------------------------------------------
// SLO budget tracking
// ---------------------------------------------------------------------------

/// Declarative per-run service-level objectives.
#[derive(Clone, Debug, PartialEq)]
pub struct SloConfig {
    /// Latency budget in nanoseconds (per sample window the latency EWMA
    /// is checked; the final report checks the histogram p99).
    pub latency_ns: Option<u64>,
    /// Throughput floor in millions of packets per second.
    pub min_mpps: Option<f64>,
    /// Fraction of sample windows allowed to violate before the budget
    /// is burned (burn rate 1.0 = budget exactly consumed).
    pub error_budget: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            latency_ns: None,
            min_mpps: None,
            error_budget: 0.05,
        }
    }
}

impl SloConfig {
    /// Parses `p99=500us,mpps=1.5,budget=0.05` (any subset, any order;
    /// latency units: `ns`, `us`, `ms`, `s`).
    pub fn parse(s: &str) -> Result<SloConfig, String> {
        let mut cfg = SloConfig::default();
        for part in s.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            match key.trim() {
                "p99" | "latency" => cfg.latency_ns = Some(parse_duration_ns(val.trim())?),
                "mpps" => {
                    cfg.min_mpps = Some(
                        val.trim()
                            .parse()
                            .map_err(|e| format!("bad mpps {val:?}: {e}"))?,
                    );
                }
                "budget" => {
                    let b: f64 = val
                        .trim()
                        .parse()
                        .map_err(|e| format!("bad budget {val:?}: {e}"))?;
                    if !(b > 0.0 && b <= 1.0) {
                        return Err(format!("budget must be in (0, 1], got {b}"));
                    }
                    cfg.error_budget = b;
                }
                other => return Err(format!("unknown SLO key {other:?}")),
            }
        }
        if cfg.latency_ns.is_none() && cfg.min_mpps.is_none() {
            return Err("SLO needs at least one of p99=<dur> or mpps=<rate>".to_owned());
        }
        Ok(cfg)
    }
}

fn parse_duration_ns(s: &str) -> Result<u64, String> {
    let (num, mult) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1e9)
    } else {
        (s, 1.0)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|e| format!("bad duration {s:?}: {e}"))?;
    Ok((v * mult) as u64)
}

/// One sample window's SLO verdict, carried on
/// [`crate::telemetry::TimeSample`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SloSample {
    /// Latency under budget this window (true when no latency SLO).
    pub latency_ok: bool,
    /// Throughput at or above the floor (true when no throughput SLO).
    pub throughput_ok: bool,
    /// Latency burn rate so far: violating-window fraction ÷ error budget.
    pub latency_burn: f64,
    /// Throughput burn rate so far.
    pub throughput_burn: f64,
}

/// Window-by-window SLO budget accounting.
#[derive(Clone, Debug)]
pub struct SloTracker {
    cfg: SloConfig,
    windows: u64,
    latency_violations: u64,
    throughput_violations: u64,
}

impl SloTracker {
    /// A tracker for the given objectives.
    pub fn new(cfg: SloConfig) -> SloTracker {
        SloTracker {
            cfg,
            windows: 0,
            latency_violations: 0,
            throughput_violations: 0,
        }
    }

    fn burn(&self, violations: u64) -> f64 {
        if self.windows == 0 {
            return 0.0;
        }
        (violations as f64 / self.windows as f64) / self.cfg.error_budget
    }

    /// Scores one sample window and returns its verdict.
    pub fn observe(&mut self, latency_ns: u64, mpps: f64) -> SloSample {
        self.windows += 1;
        let latency_ok = self.cfg.latency_ns.is_none_or(|b| latency_ns <= b);
        let throughput_ok = self.cfg.min_mpps.is_none_or(|floor| mpps >= floor);
        if !latency_ok {
            self.latency_violations += 1;
        }
        if !throughput_ok {
            self.throughput_violations += 1;
        }
        SloSample {
            latency_ok,
            throughput_ok,
            latency_burn: self.burn(self.latency_violations),
            throughput_burn: self.burn(self.throughput_violations),
        }
    }

    /// Final accounting: window burn rates plus the end-of-run check
    /// against the whole-run p99 and mean throughput.
    pub fn report(&self, final_p99_ns: u64, final_mpps: f64) -> SloReport {
        let latency_burn = self.burn(self.latency_violations);
        let throughput_burn = self.burn(self.throughput_violations);
        let final_latency_ok = self.cfg.latency_ns.is_none_or(|b| final_p99_ns <= b);
        let final_throughput_ok = self.cfg.min_mpps.is_none_or(|f| final_mpps >= f);
        SloReport {
            cfg: self.cfg.clone(),
            windows: self.windows,
            latency_violations: self.latency_violations,
            throughput_violations: self.throughput_violations,
            latency_burn,
            throughput_burn,
            final_p99_ns,
            final_mpps,
            met: latency_burn <= 1.0
                && throughput_burn <= 1.0
                && final_latency_ok
                && final_throughput_ok,
        }
    }
}

/// End-of-run SLO verdict carried on run reports.
#[derive(Clone, Debug, PartialEq)]
pub struct SloReport {
    /// The objectives that were tracked.
    pub cfg: SloConfig,
    /// Sample windows scored.
    pub windows: u64,
    /// Windows that violated the latency budget.
    pub latency_violations: u64,
    /// Windows that violated the throughput floor.
    pub throughput_violations: u64,
    /// Latency burn rate over the run.
    pub latency_burn: f64,
    /// Throughput burn rate over the run.
    pub throughput_burn: f64,
    /// Whole-run p99 latency (ns).
    pub final_p99_ns: u64,
    /// Whole-run mean throughput (Mpps).
    pub final_mpps: f64,
    /// Every budget held: burns ≤ 1 and the final aggregates in bounds.
    pub met: bool,
}

impl SloReport {
    /// JSON object for `/status` and report embedding.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"windows\":{},\"latency_violations\":{},\"throughput_violations\":{},\
             \"latency_burn\":{},\"throughput_burn\":{},\"final_p99_ns\":{},\
             \"final_mpps\":{},\"met\":{}}}",
            self.windows,
            self.latency_violations,
            self.throughput_violations,
            json_f64(self.latency_burn),
            json_f64(self.throughput_burn),
            self.final_p99_ns,
            json_f64(self.final_mpps),
            self.met,
        )
    }
}

// ---------------------------------------------------------------------------
// Run-level configuration
// ---------------------------------------------------------------------------

/// Opt-in switches for the audit plane. Everything defaults to off so
/// un-audited runs stay bit-identical to the pre-audit runtime.
#[derive(Clone, Debug, Default)]
pub struct AuditConfig {
    /// Decision records to keep (0 disables the decision log).
    pub decision_capacity: usize,
    /// Record per-stage offload histograms.
    pub stage_stats: bool,
    /// Run the cost-model drift detector.
    pub drift: Option<DriftConfig>,
}

impl AuditConfig {
    /// True when any piece of the plane is on.
    pub fn enabled(&self) -> bool {
        self.decision_capacity > 0 || self.stage_stats || self.drift.is_some()
    }

    /// Everything on: decision log of `capacity`, stage stats, drift
    /// detection at defaults.
    pub fn full(capacity: usize) -> AuditConfig {
        AuditConfig {
            decision_capacity: capacity,
            stage_stats: true,
            drift: Some(DriftConfig::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lb::{Adaptive, LoadBalancer};

    fn drive(lb: &mut dyn LoadBalancer, ticks: u64) {
        let mut tx = 0u64;
        for i in 1..=ticks {
            let t = Time::from_ms(10 * i);
            let w = lb.offload_fraction();
            tx += (1e6 * (1.0 - (w - 0.6) * (w - 0.6)) * 0.01) as u64;
            lb.observe_latency(40_000 + i * 13);
            lb.set_decision_context(DecisionContext {
                queue_depth: i % 7,
                gpu_busy: (i % 10) as f64 / 10.0,
                predicted_cpu_ns_per_pkt: 600.0,
                predicted_gpu_ns_per_pkt: 300.0 + i as f64,
            });
            lb.tick(t, tx);
            if i == 40 {
                lb.observe_device_health(false);
            }
            if i == 60 {
                lb.observe_device_health(true);
            }
        }
    }

    fn audited_run() -> DecisionLog {
        let cfg = AlbConfig {
            update_interval: Time::from_ms(10),
            avg_window: 2,
            min_wait: 0,
            max_wait: 2,
            initial_w: 0.3,
            ..AlbConfig::default()
        };
        let mut lb = Adaptive::new(cfg);
        lb.enable_audit(4096);
        drive(&mut lb, 200);
        lb.take_audit_log().expect("audit enabled")
    }

    #[test]
    fn replay_reproduces_w_bit_exactly() {
        let log = audited_run();
        assert!(
            log.records.len() > 20,
            "run too short: {}",
            log.records.len()
        );
        assert!(log
            .records
            .iter()
            .any(|r| r.kind == DecisionKind::Move && r.w_before != r.w_after));
        assert!(log
            .records
            .iter()
            .any(|r| r.kind == DecisionKind::HealthDown));
        let replayed = replay(&log).expect("replay");
        assert!(
            log.bit_eq(&replayed),
            "replay diverged:\n{:#?}\nvs\n{:#?}",
            log.records
                .iter()
                .zip(&replayed.records)
                .find(|(a, b)| !a.bit_eq(b)),
            log.records.len() as i64 - replayed.records.len() as i64,
        );
    }

    #[test]
    fn jsonl_round_trip_is_bit_exact() {
        let log = audited_run();
        let text = log.to_jsonl();
        let parsed = DecisionLog::from_jsonl(&text).expect("parse");
        assert_eq!(parsed.balancer, log.balancer);
        assert_eq!(parsed.records.len(), log.records.len());
        assert!(log.bit_eq(&parsed), "JSONL round trip lost bits");
        let replayed = replay(&parsed).expect("replay parsed");
        assert!(parsed.bit_eq(&replayed));
    }

    #[test]
    fn latency_bounded_replay_is_bit_exact() {
        use crate::lb::LatencyBounded;
        let cfg = AlbConfig {
            update_interval: Time::from_ms(10),
            avg_window: 2,
            min_wait: 0,
            max_wait: 2,
            initial_w: 0.8,
            ..AlbConfig::default()
        };
        let mut lb = LatencyBounded::new(Adaptive::new(cfg), Time::from_us(100));
        lb.enable_audit(4096);
        let mut tx = 0u64;
        for i in 1..=120u64 {
            tx += 9_000;
            // Over the bound for a stretch, then back under.
            let lat = if (30..70).contains(&i) {
                900_000
            } else {
                40_000
            };
            lb.observe_latency(lat);
            lb.tick(Time::from_ms(10 * i), tx);
        }
        let log = lb.take_audit_log().expect("audit");
        assert!(log
            .records
            .iter()
            .any(|r| r.kind == DecisionKind::ViolationStep));
        assert_eq!(log.bound_ns, Some(100_000));
        let replayed = replay(&log).expect("replay");
        assert!(log.bit_eq(&replayed), "latency-bounded replay diverged");
    }

    #[test]
    fn log_keeps_prefix_and_counts_drops() {
        let mut log = DecisionLog::new("adaptive", AlbConfig::default(), 0.5, 2);
        for i in 0..5 {
            let seq = log.next_seq();
            assert_eq!(seq, i);
            log.push(DecisionRecord {
                seq,
                t: Time::from_ms(i),
                kind: DecisionKind::Observe,
                total_tx: i,
                latency_ewma_ns: 0,
                healthy: true,
                queue_depth: 0,
                gpu_busy: 0.0,
                predicted_cpu_ns_per_pkt: 0.0,
                predicted_gpu_ns_per_pkt: 0.0,
                thr_pps: 0.0,
                avg_pps: 0.0,
                last_avg_pps: 0.0,
                dir: 1.0,
                w_before: 0.5,
                w_after: 0.5,
            });
        }
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.dropped, 3);
        assert_eq!(log.records[0].seq, 0);
        assert_eq!(log.records[1].seq, 1);
    }

    #[test]
    fn decision_clock_quantizes_ticks() {
        let cfg = AlbConfig {
            avg_window: 2,
            min_wait: 0,
            max_wait: 2,
            initial_w: 0.5,
            ..AlbConfig::default()
        };
        let mk = || {
            let mut lb = Adaptive::new(cfg.clone());
            lb.enable_audit(1024);
            lb.set_decision_clock(DecisionClock::new(1_000, 6));
            lb
        };
        // Two runs seeing the same packet totals at completely different
        // wall times and tick cadences must produce identical streams.
        let mut a = mk();
        for i in 1..=50u64 {
            a.observe_latency(i * 777); // ignored in clock mode
            a.tick(Time::from_us(i * 37), i * 160);
        }
        let mut b = mk();
        for i in 1..=8u64 {
            b.tick(Time::from_ms(i * 91), i * 1_000);
        }
        let la = a.take_audit_log().unwrap();
        let lb_ = b.take_audit_log().unwrap();
        assert!(la.records.len() >= 6);
        assert!(la.bit_eq(&lb_), "clocked streams diverged");
        assert_eq!(la.clock, Some((1_000, 6)));
        // And the clocked stream replays bit-exactly through a clockless
        // balancer fed the recorded quantized inputs.
        let replayed = replay(&la).expect("replay clocked log");
        assert!(la.bit_eq(&replayed));
    }

    #[test]
    fn explain_renders_moves() {
        let log = audited_run();
        let text = log.explain();
        assert!(text.contains("w 0."), "no move line:\n{text}");
        assert!(text.contains("because"), "no justification:\n{text}");
        assert!(
            text.contains("quarantine") || text.contains("OPEN"),
            "{text}"
        );
    }

    #[test]
    fn stage_profiles_merge_like_histograms() {
        let mut a = StageProfiles::new();
        let mut b = StageProfiles::new();
        a.record(OffloadStage::Compute, 10_000);
        a.tasks = 1;
        b.record(OffloadStage::Compute, 30_000);
        b.record(OffloadStage::Gather, 2_000);
        b.tasks = 1;
        a.merge(&b);
        assert_eq!(a.tasks, 2);
        assert_eq!(a.hist[OffloadStage::Compute.index()].count(), 2);
        assert_eq!(a.total_ns[OffloadStage::Compute.index()], 40_000);
        assert!((a.mean_ns(OffloadStage::Compute) - 20_000.0).abs() < 1e-9);
        assert!(!a.is_empty());
        assert!(StageProfiles::new().is_empty());
    }

    #[test]
    fn drift_detector_fires_on_launch_excess_and_names_the_stage() {
        let mut det = DriftDetector::new(DriftConfig {
            threshold: 0.5,
            min_tasks: 4,
            alpha: 0.5,
        });
        let li = OffloadStage::Launch.index();
        let ci = OffloadStage::Compute.index();
        let mut predicted = [0u64; 7];
        predicted[ci] = 100_000;
        // Clean tasks: no event.
        let mut clean = predicted;
        clean[ci] = 110_000; // 10% queueing noise
        for _ in 0..8 {
            assert_eq!(det.observe(&clean, &predicted), None);
        }
        assert!(det.rel_err() < 0.2);
        // Perturbed tasks: retry backoff lands in Launch.
        let mut hot = predicted;
        hot[li] = 400_000;
        let mut fired = None;
        for _ in 0..16 {
            if let Some(stage) = det.observe(&hot, &predicted) {
                fired = Some(stage);
                break;
            }
        }
        assert_eq!(fired, Some(OffloadStage::Launch));
        assert_eq!(det.events(), 1);
        // Latched: keeps accounting but never re-fires.
        assert_eq!(det.observe(&hot, &predicted), None);
        let rep = det.report();
        assert_eq!(rep.worst_stage.as_deref(), Some("launch"));
        assert!(rep.rel_err > 0.5);
    }

    #[test]
    fn slo_parse_and_burn_accounting() {
        let cfg = SloConfig::parse("p99=500us,mpps=1.5,budget=0.1").unwrap();
        assert_eq!(cfg.latency_ns, Some(500_000));
        assert_eq!(cfg.min_mpps, Some(1.5));
        assert!((cfg.error_budget - 0.1).abs() < 1e-12);
        assert!(SloConfig::parse("").is_err());
        assert!(SloConfig::parse("p99=abc").is_err());
        assert!(SloConfig::parse("nope=1").is_err());
        assert_eq!(
            SloConfig::parse("latency=2ms").unwrap().latency_ns,
            Some(2_000_000)
        );

        let mut tr = SloTracker::new(cfg);
        // 10 windows, 2 latency violations, 0 throughput violations.
        for i in 0..10u64 {
            let lat = if i < 2 { 900_000 } else { 100_000 };
            let s = tr.observe(lat, 2.0);
            assert_eq!(s.latency_ok, i >= 2);
            assert!(s.throughput_ok);
        }
        let rep = tr.report(400_000, 2.0);
        assert_eq!(rep.windows, 10);
        assert_eq!(rep.latency_violations, 2);
        // 2/10 violating ÷ 0.1 budget = burn 2.0 — budget blown.
        assert!((rep.latency_burn - 2.0).abs() < 1e-9);
        assert!((rep.throughput_burn - 0.0).abs() < 1e-12);
        assert!(!rep.met);
        // A clean tracker meets the SLO.
        let mut ok = SloTracker::new(SloConfig::parse("p99=1ms,mpps=1").unwrap());
        for _ in 0..10 {
            ok.observe(100_000, 2.0);
        }
        assert!(ok.report(500_000, 2.0).met);
        let js = ok.report(500_000, 2.0).to_json();
        assert!(js.contains("\"met\":true"), "{js}");
    }
}
