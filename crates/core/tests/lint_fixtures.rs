//! One failing fixture pipeline per `nba-lint` diagnostic code, asserting
//! both the stable code and the configuration source line it points at —
//! the contract `probe --check` and editor integrations build on.

use std::sync::Arc;

use nba_core::batch::{anno, Anno, PacketResult};
use nba_core::config::{build_graph, build_graph_checked, ElementRegistry};
use nba_core::element::{
    DbInput, DbOutput, ElemCtx, Element, KernelIo, OffloadSpec, Postprocess, SlotClaim,
};
use nba_core::graph::{BranchPolicy, GraphBuilder};
use nba_core::lint::{Code, Severity};
use nba_core::runtime::{des, traffic_per_port, PipelineBuilder, RuntimeConfig};
use nba_io::Packet;
use nba_sim::{GpuProfile, Time};

/// A configurable fixture element: class name, fan-out, slot claims, and an
/// optional offload spec are all injectable per registry entry.
struct Fx {
    name: &'static str,
    ports: usize,
    claims: &'static [SlotClaim],
    spec: Option<OffloadSpec>,
}

impl Element for Fx {
    fn class_name(&self) -> &'static str {
        self.name
    }
    fn output_count(&self) -> usize {
        self.ports
    }
    fn slot_claims(&self) -> &'static [SlotClaim] {
        self.claims
    }
    fn offload(&self) -> Option<OffloadSpec> {
        self.spec.clone()
    }
    fn process(&mut self, _: &mut ElemCtx<'_>, _: &mut Packet, _: &mut Anno) -> PacketResult {
        PacketResult::Out(0)
    }
}

fn spec(input: DbInput, output: DbOutput, post: Postprocess) -> OffloadSpec {
    OffloadSpec {
        input,
        output,
        gpu: GpuProfile::default(),
        kernel: Arc::new(|_: KernelIo<'_>| {}),
        heavy: false,
        postprocess: post,
    }
}

static WRITE_FLOW: &[SlotClaim] = &[SlotClaim::writes(anno::FLOW_ID)];
static READ_AC: &[SlotClaim] = &[SlotClaim::reads(anno::AC_MATCH)];
static WRITE_TS: &[SlotClaim] = &[SlotClaim::writes(anno::TIMESTAMP)];
static SLOT_99: &[SlotClaim] = &[SlotClaim::writes(99)];

fn registry() -> ElementRegistry {
    let mut r = ElementRegistry::new();
    let fx = |name: &'static str, ports: usize, claims: &'static [SlotClaim]| Fx {
        name,
        ports,
        claims,
        spec: None,
    };
    r.register("Stage", move |_| Ok(Box::new(fx("Stage", 1, &[]))));
    r.register("Fork", move |_| Ok(Box::new(fx("Fork", 2, &[]))));
    r.register("WriteFlow", move |_| {
        Ok(Box::new(fx("WriteFlow", 1, WRITE_FLOW)))
    });
    r.register("StampFlow", move |_| {
        Ok(Box::new(fx("StampFlow", 1, WRITE_FLOW)))
    });
    r.register("ReadAc", move |_| Ok(Box::new(fx("ReadAc", 1, READ_AC))));
    r.register("WriteTs", move |_| Ok(Box::new(fx("WriteTs", 1, WRITE_TS))));
    r.register("BigSlot", move |_| Ok(Box::new(fx("BigSlot", 1, SLOT_99))));
    // A size-changing in-place rewrite from byte 14 on.
    r.register("Grow", |_| {
        Ok(Box::new(Fx {
            name: "Grow",
            ports: 1,
            claims: &[],
            spec: Some(spec(
                DbInput::PartialPacket {
                    offset: 14,
                    len: 64,
                },
                DbOutput::InPlace { extra: 16 },
                Postprocess::WriteBack,
            )),
        }))
    });
    // A whole-packet scanner scattering verdicts into an annotation.
    r.register("Scan", |_| {
        Ok(Box::new(Fx {
            name: "Scan",
            ports: 1,
            claims: &[],
            spec: Some(spec(
                DbInput::WholePacket { offset: 0 },
                DbOutput::PerItem { len: 8 },
                Postprocess::Annotation(anno::AC_MATCH),
            )),
        }))
    });
    r
}

/// The first diagnostic with `code`, with its (severity, line).
fn first(src: &str, policy: BranchPolicy, code: Code) -> (Severity, Option<usize>) {
    let checked = build_graph_checked(src, &registry(), policy).expect("fixture must assemble");
    let d = checked
        .report
        .with_code(code)
        .next()
        .unwrap_or_else(|| panic!("expected {code:?} in:\n{}", checked.report.render_text()));
    (d.severity, d.line)
}

#[test]
fn nba001_unreachable_node_points_at_declaration() {
    let (sev, line) = first(
        "src :: FromInput();\na :: Stage();\nb :: Stage();\nsrc -> a -> ToOutput;\nb -> ToOutput;",
        BranchPolicy::Predict,
        Code::UnreachableNode,
    );
    assert_eq!(sev, Severity::Error);
    assert_eq!(line, Some(3));
}

#[test]
fn nba002_port_arity_points_at_connection() {
    let (sev, line) = first(
        "src :: FromInput();\na :: Stage();\nsrc -> a;\na [2] -> ToOutput;\na [0] -> ToOutput;",
        BranchPolicy::Predict,
        Code::PortArity,
    );
    assert_eq!(sev, Severity::Error);
    assert_eq!(line, Some(4));
}

#[test]
fn nba003_cycle_points_at_back_edge() {
    let (sev, line) = first(
        "src :: FromInput();\na :: Stage();\nb :: Stage();\nsrc -> a;\na -> b;\nb -> a;",
        BranchPolicy::Predict,
        Code::Cycle,
    );
    assert_eq!(sev, Severity::Error);
    assert_eq!(line, Some(6));
}

#[test]
fn nba010_slot_out_of_range() {
    let (sev, line) = first(
        "src :: FromInput();\nx :: BigSlot();\nsrc -> x -> ToOutput;",
        BranchPolicy::Predict,
        Code::SlotOutOfRange,
    );
    assert_eq!(sev, Severity::Error);
    assert_eq!(line, Some(2));
}

#[test]
fn nba011_reserved_slot_write() {
    let (sev, line) = first(
        "src :: FromInput();\nt :: WriteTs();\nsrc -> t -> ToOutput;",
        BranchPolicy::Predict,
        Code::ReservedSlotWrite,
    );
    assert_eq!(sev, Severity::Error);
    assert_eq!(line, Some(2));
}

#[test]
fn nba012_slot_collision_between_classes() {
    let (sev, line) = first(
        "src :: FromInput();\nw1 :: WriteFlow();\nw2 :: StampFlow();\nsrc -> w1 -> w2 -> ToOutput;",
        BranchPolicy::Predict,
        Code::SlotCollision,
    );
    assert_eq!(sev, Severity::Error);
    assert_eq!(line, Some(3));
}

#[test]
fn nba013_read_of_unwritten_slot() {
    let (sev, line) = first(
        "src :: FromInput();\nr :: ReadAc();\nsrc -> r -> ToOutput;",
        BranchPolicy::Predict,
        Code::SlotReadUnwritten,
    );
    assert_eq!(sev, Severity::Warn);
    assert_eq!(line, Some(2));
}

#[test]
fn nba020_datablock_overlap_after_size_delta() {
    let (sev, line) = first(
        "src :: FromInput();\ng :: Grow();\ns :: Scan();\nsrc -> g -> s -> ToOutput;",
        BranchPolicy::Predict,
        Code::DatablockOverlap,
    );
    assert_eq!(sev, Severity::Error);
    assert_eq!(line, Some(3));
}

#[test]
fn nba030_batch_split_under_split_always() {
    let cfg = "src :: FromInput();\nf :: Fork();\na :: Stage();\nb :: Stage();\n\
               src -> f;\nf [0] -> a -> ToOutput;\nf [1] -> b -> ToOutput;";
    let (sev, line) = first(cfg, BranchPolicy::SplitAlways, Code::BatchSplit);
    assert_eq!(sev, Severity::Warn);
    assert_eq!(line, Some(2));
    // Warnings never block the strict frontend.
    build_graph(cfg, &registry(), BranchPolicy::SplitAlways).expect("warn-only config builds");
}

#[test]
fn strict_frontend_rejects_error_fixture_with_code_and_line() {
    let err = build_graph(
        "src :: FromInput();\na :: Stage();\nb :: Stage();\nsrc -> a;\na -> b;\nb -> a;",
        &registry(),
        BranchPolicy::Predict,
    )
    .unwrap_err();
    assert!(err.msg.contains("NBA003"), "{err}");
    assert_eq!(err.line, 6);
}

/// The runtimes refuse to start a pipeline that fails verification: the
/// mandatory preflight panics before any batch flows.
#[test]
#[should_panic(expected = "static verification")]
fn des_runtime_refuses_unverified_graph() {
    let build: PipelineBuilder = Arc::new(|ctx| {
        let mut gb = GraphBuilder::new();
        gb.branch_policy(ctx.policy);
        let a = gb.add(Box::new(Fx {
            name: "Entry",
            ports: 1,
            claims: &[],
            spec: None,
        }));
        // An orphan node nothing feeds: NBA001 at Error severity.
        let b = gb.add(Box::new(Fx {
            name: "Orphan",
            ports: 1,
            claims: &[],
            spec: None,
        }));
        gb.connect_exit(a, 0);
        gb.connect_exit(b, 0);
        gb.entry(a);
        gb.build().expect("builder accepts the orphan")
    });
    let cfg = RuntimeConfig {
        warmup: Time::from_ms(1),
        measure: Time::from_ms(1),
        ..RuntimeConfig::default()
    };
    let traffic = traffic_per_port(&cfg.topology, &nba_io::TrafficConfig::default());
    let balancer = nba_core::lb::shared(Box::new(nba_core::lb::CpuOnly));
    des::run(&cfg, &build, &balancer, &traffic);
}
