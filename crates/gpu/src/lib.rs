//! `nba-gpu`: the accelerator substrate standing in for NVIDIA CUDA + GTX 680.
//!
//! NBA offloads computation to discrete GPUs through device threads and
//! command queues. This crate models such a device:
//!
//! * [`mem::DeviceMemory`] — a capacity-enforcing device memory arena with
//!   generation-tagged handles,
//! * [`timeline::Timeline`] — the temporal model: three pipelined engines
//!   (H2D DMA, compute, D2H DMA) plus per-stream ordering, parameterized by
//!   the calibrated [`nba_sim::GpuCostModel`],
//! * [`shim::Gpu`] — the OpenCL-like shim the framework talks to: offload
//!   tasks execute *functionally* on the host (kernels are Rust closures, so
//!   GPU-path output is bit-identical to the CPU path) while completion
//!   times come from the timeline model,
//! * [`fault::FaultInjector`] — seeded, typed fault injection (timeouts,
//!   transient errors, corrupted output, device death) so the framework's
//!   degradation ladder is testable and bit-reproducible.

#![forbid(unsafe_code)]

pub mod fault;
pub mod mem;
pub mod shim;
pub mod timeline;

pub use fault::{FaultInjector, FaultKind, FaultPlan};
pub use mem::{DeviceBuffer, DeviceMemory, MemError};
pub use shim::{Gpu, KernelFn};
pub use timeline::{StreamId, TaskTiming, Timeline, TimelineStats};
