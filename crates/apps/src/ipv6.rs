//! The IPv6 router: binary search on prefix lengths over hash tables
//! (Waldvogel et al., SIGCOMM'97), as in PacketShader and the paper's IPv6
//! application.
//!
//! Real prefixes live in per-length hash tables; *markers* are inserted at
//! the lengths the binary search probes on the way to longer prefixes, each
//! carrying the best matching prefix seen so far, so search never
//! backtracks. A lookup probes at most `ceil(log2(#lengths)) ≈ 7` tables —
//! the paper's "at most seven random memory accesses".

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use nba_core::batch::{anno, Anno, PacketResult};
use nba_core::element::{
    DbInput, DbOutput, Disposition, ElemCtx, Element, ElementEffects, HeaderFact, KernelIo,
    OffloadSpec, Postprocess, SlotClaim,
};
use nba_io::proto::ether::ETHER_HDR_LEN;
use nba_io::Packet;
use nba_sim::{CpuProfile, GpuProfile};

/// A route: prefix, length, next hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteV6 {
    /// Network prefix (upper `len` bits significant).
    pub prefix: u128,
    /// Prefix length, 0..=128.
    pub len: u8,
    /// Next-hop id.
    pub next_hop: u16,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Next hop if a real prefix ends here.
    real: Option<u16>,
    /// Best matching real prefix shorter than this marker.
    bmp: Option<u16>,
}

/// The compiled binary-search-on-lengths table.
pub struct RoutingTableV6 {
    /// Distinct prefix lengths, ascending (search domain).
    lengths: Vec<u8>,
    /// Hash tables per length: key = prefix bits truncated to that length.
    tables: Vec<HashMap<u128, Entry>>,
    /// Next hop of a zero-length (default) route.
    default_hop: Option<u16>,
    routes: Vec<RouteV6>,
}

fn truncate(addr: u128, len: u8) -> u128 {
    if len == 0 {
        0
    } else if len >= 128 {
        addr
    } else {
        addr >> (128 - u32::from(len)) << (128 - u32::from(len))
    }
}

impl RoutingTableV6 {
    /// Builds the search structure from a route list.
    ///
    /// # Panics
    ///
    /// Panics if a prefix length exceeds 128.
    pub fn build(routes: &[RouteV6]) -> RoutingTableV6 {
        let mut default_hop = None;
        let mut lengths: Vec<u8> = Vec::new();
        for r in routes {
            assert!(r.len <= 128, "prefix length {} out of range", r.len);
            if r.len == 0 {
                default_hop = Some(r.next_hop);
            } else if !lengths.contains(&r.len) {
                lengths.push(r.len);
            }
        }
        lengths.sort_unstable();
        let idx_of = |l: u8| lengths.binary_search(&l).expect("length present");
        let mut tables: Vec<HashMap<u128, Entry>> = vec![HashMap::new(); lengths.len()];

        // Insert real prefixes.
        for r in routes {
            if r.len == 0 {
                continue;
            }
            let t = &mut tables[idx_of(r.len)];
            let e = t.entry(truncate(r.prefix, r.len)).or_insert(Entry {
                real: None,
                bmp: None,
            });
            e.real = Some(r.next_hop);
        }

        // Insert markers along each prefix's binary-search path.
        let marker_path = |target: usize, lengths: &[u8]| -> Vec<usize> {
            let mut path = Vec::new();
            let (mut lo, mut hi) = (0isize, lengths.len() as isize - 1);
            while lo <= hi {
                let mid = ((lo + hi) / 2) as usize;
                match mid.cmp(&target) {
                    std::cmp::Ordering::Less => {
                        path.push(mid);
                        lo = mid as isize + 1;
                    }
                    std::cmp::Ordering::Equal => break,
                    std::cmp::Ordering::Greater => hi = mid as isize - 1,
                }
            }
            path
        };
        for r in routes {
            if r.len == 0 {
                continue;
            }
            let target = idx_of(r.len);
            for mid in marker_path(target, &lengths) {
                let mlen = lengths[mid];
                let key = truncate(r.prefix, mlen);
                tables[mid].entry(key).or_insert(Entry {
                    real: None,
                    bmp: None,
                });
            }
        }

        // Fill best-matching-prefix info on every entry (marker or real):
        // the longest real prefix strictly shorter than the entry's length
        // that covers it, falling back to the default route at lookup time.
        let snapshot: Vec<HashMap<u128, Entry>> = tables.clone();
        for (li, table) in tables.iter_mut().enumerate() {
            for (key, entry) in table.iter_mut() {
                for shorter in (0..li).rev() {
                    let skey = truncate(*key, lengths[shorter]);
                    if let Some(se) = snapshot[shorter].get(&skey) {
                        if let Some(h) = se.real {
                            entry.bmp = Some(h);
                            break;
                        }
                    }
                }
            }
        }

        RoutingTableV6 {
            lengths,
            tables,
            default_hop,
            routes: routes.to_vec(),
        }
    }

    /// Generates a random-but-reproducible table with a default route and
    /// `n` prefixes over lengths 16..=64 within the same /16 pools the
    /// traffic generator uses (2001:db8::/32 and random).
    pub fn random(seed: u64, n: usize, next_hops: u16) -> RoutingTableV6 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut routes = vec![RouteV6 {
            prefix: 0,
            len: 0,
            next_hop: rng.gen_range(0..next_hops),
        }];
        // Coverage layer over the traffic pool: every 2001:db8:XX00::/40 is
        // routed so pool traffic spreads across all next hops.
        for b in 0u128..=255 {
            routes.push(RouteV6 {
                prefix: (0x2001_0db8u128 << 96) | (b << 88),
                len: 40,
                next_hop: rng.gen_range(0..next_hops),
            });
        }
        for i in 0..n {
            let len: u8 = *[16u8, 24, 32, 40, 48, 52, 56, 60, 64][..]
                .get(rng.gen_range(0..9))
                .unwrap();
            // Half the prefixes land in the generator's 2001:db8::/32 pool
            // so traffic actually exercises deep prefixes.
            let base: u128 = if i % 2 == 0 {
                0x2001_0db8u128 << 96 | (rng.gen::<u128>() >> 32)
            } else {
                rng.gen::<u128>()
            };
            routes.push(RouteV6 {
                prefix: truncate(base, len),
                len,
                next_hop: rng.gen_range(0..next_hops),
            });
        }
        RoutingTableV6::build(&routes)
    }

    /// Longest-prefix-match lookup by binary search over lengths.
    pub fn lookup(&self, dst: u128) -> Option<u16> {
        let mut best = self.default_hop;
        let (mut lo, mut hi) = (0isize, self.lengths.len() as isize - 1);
        while lo <= hi {
            let mid = ((lo + hi) / 2) as usize;
            let key = truncate(dst, self.lengths[mid]);
            match self.tables[mid].get(&key) {
                Some(e) => {
                    if let Some(h) = e.real {
                        best = Some(h);
                    } else if let Some(h) = e.bmp {
                        best = Some(h);
                    }
                    lo = mid as isize + 1;
                }
                None => hi = mid as isize - 1,
            }
        }
        best
    }

    /// Worst-case number of hash probes per lookup.
    pub fn max_probes(&self) -> u32 {
        (usize::BITS - self.lengths.len().leading_zeros()).max(1)
    }

    /// Linear-scan longest-prefix match (test oracle).
    pub fn lookup_linear(&self, dst: u128) -> Option<u16> {
        let mut best: Option<(u8, u16)> = None;
        for r in &self.routes {
            if truncate(dst, r.len) == truncate(r.prefix, r.len) {
                // Ties resolve to the later route, matching build order.
                match best {
                    Some((l, _)) if l > r.len => {}
                    _ => best = Some((r.len, r.next_hop)),
                }
            }
        }
        best.map(|(_, h)| h)
    }
}

impl std::fmt::Debug for RoutingTableV6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutingTableV6")
            .field("routes", &self.routes.len())
            .field("lengths", &self.lengths)
            .finish()
    }
}

/// Byte offset of the IPv6 destination address in an Ethernet frame.
const DST_OFFSET: usize = ETHER_HDR_LEN + 24;

/// The IPv6 lookup element (offloadable).
pub struct LookupIP6 {
    table: Arc<RoutingTableV6>,
    ports: u16,
}

impl LookupIP6 {
    /// Creates a lookup element over a shared table.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    pub fn new(table: Arc<RoutingTableV6>, ports: u16) -> LookupIP6 {
        assert!(ports > 0);
        LookupIP6 { table, ports }
    }
}

impl Element for LookupIP6 {
    fn class_name(&self) -> &'static str {
        "LookupIP6"
    }

    // The CPU path writes the next-hop port; post_offload reads the slot
    // the kernel's annotation postprocess filled.
    fn slot_claims(&self) -> &'static [SlotClaim] {
        const CLAIMS: &[SlotClaim] = &[
            SlotClaim::writes(anno::IFACE_OUT),
            SlotClaim::reads(anno::IFACE_OUT),
        ];
        CLAIMS
    }

    fn process(&mut self, _: &mut ElemCtx<'_>, pkt: &mut Packet, anno: &mut Anno) -> PacketResult {
        let data = pkt.data();
        if data.len() < DST_OFFSET + 16 {
            return PacketResult::Drop;
        }
        let dst = u128::from_be_bytes(data[DST_OFFSET..DST_OFFSET + 16].try_into().unwrap());
        match self.table.lookup(dst) {
            Some(hop) => {
                anno.set(anno::IFACE_OUT, u64::from(hop % self.ports));
                PacketResult::Out(0)
            }
            None => PacketResult::Drop,
        }
    }

    fn cpu_profile(&self) -> CpuProfile {
        // Up to seven dependent hash probes: memory- and compute-intensive.
        CpuProfile::fixed(520)
    }

    fn effects(&self) -> ElementEffects {
        const REQ: &[HeaderFact] = &[HeaderFact::Ipv6Valid];
        ElementEffects {
            requires: REQ,
            disposition: Disposition::MayDrop,
            ..ElementEffects::default()
        }
    }

    fn offload(&self) -> Option<OffloadSpec> {
        let table = self.table.clone();
        let ports = self.ports;
        Some(OffloadSpec {
            input: DbInput::PartialPacket {
                offset: DST_OFFSET,
                len: 16,
            },
            output: DbOutput::PerItem { len: 8 },
            gpu: GpuProfile {
                // Up to seven dependent global-memory reads per lane.
                fixed_ns: 2_800.0,
                ns_per_byte: 0.0,
            },
            kernel: Arc::new(move |io: KernelIo<'_>| {
                for i in 0..io.items {
                    let item = io.item_in(i);
                    let hop = if item.len() == 16 {
                        let dst = u128::from_be_bytes(item.try_into().unwrap());
                        table.lookup(dst).map(|h| h % ports)
                    } else {
                        None
                    };
                    let v = hop.map_or(u64::MAX, u64::from);
                    let r = io.item_out_range(i);
                    io.output[r].copy_from_slice(&v.to_le_bytes());
                }
            }),
            heavy: false,
            postprocess: Postprocess::Annotation(anno::IFACE_OUT),
        })
    }

    fn post_offload(&mut self, _: &mut ElemCtx<'_>, batch: &mut nba_core::batch::PacketBatch) {
        // The kernel marks lookup misses with u64::MAX: drop those.
        let live: Vec<usize> = batch.live_indices().collect();
        for i in live {
            if batch.anno(i).get(anno::IFACE_OUT) == u64::MAX {
                batch.set_result(i, PacketResult::Drop);
            } else {
                batch.set_result(i, PacketResult::Out(0));
            }
        }
    }
}

impl std::fmt::Debug for LookupIP6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LookupIP6")
            .field("table", &self.table)
            .field("ports", &self.ports)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{ctx_harness, run_one_anno};
    use nba_io::proto::FrameBuilder;

    fn r(prefix: u128, len: u8, hop: u16) -> RouteV6 {
        RouteV6 {
            prefix: truncate(prefix, len),
            len,
            next_hop: hop,
        }
    }

    #[test]
    fn longest_prefix_wins_across_search_tree() {
        let base = 0x2001_0db8u128 << 96;
        let t = RoutingTableV6::build(&[
            r(0, 0, 9),
            r(base, 32, 1),
            r(base | (0xaa << 88), 40, 2),
            r(base | (0xaa << 88) | (0xbb << 80), 48, 3),
            r(base | (0xaa << 88) | (0xbb << 80) | (0xcc << 72), 56, 4),
        ]);
        assert_eq!(t.lookup(0x1111u128 << 112), Some(9));
        assert_eq!(t.lookup(base | 42), Some(1));
        assert_eq!(t.lookup(base | (0xaa << 88) | 7), Some(2));
        assert_eq!(t.lookup(base | (0xaa << 88) | (0xbb << 80) | 1), Some(3));
        assert_eq!(
            t.lookup(base | (0xaa << 88) | (0xbb << 80) | (0xcc << 72) | 5),
            Some(4)
        );
    }

    #[test]
    fn marker_without_real_prefix_does_not_match() {
        // A /48 creates a marker at /32; a dst matching only the marker
        // must fall back to the default, not claim the /48's hop.
        let base = 0x2001_0db8u128 << 96;
        let t = RoutingTableV6::build(&[
            r(0, 0, 9),
            r(base | (0xaa << 88) | (0xbb << 80), 48, 3),
            // A second length so the search actually probes /32 first.
            r(0x3000u128 << 112, 32, 7),
        ]);
        // Shares the /32 bits with the /48 but diverges later.
        let dst = base | (0xaa << 88) | (0xdd << 80);
        assert_eq!(t.lookup(dst), Some(9));
    }

    #[test]
    fn matches_linear_oracle_on_random_tables() {
        let t = RoutingTableV6::random(21, 800, 32);
        let mut rng = SmallRng::seed_from_u64(4);
        for i in 0..4_000 {
            // Mix pool-local and fully random addresses.
            let dst = if i % 2 == 0 {
                0x2001_0db8u128 << 96 | (rng.gen::<u128>() >> 32)
            } else {
                rng.gen()
            };
            assert_eq!(t.lookup(dst), t.lookup_linear(dst), "dst = {dst:#x}");
        }
    }

    #[test]
    fn probe_budget_is_paper_sized() {
        let t = RoutingTableV6::random(5, 10_000, 16);
        assert!(t.max_probes() <= 7, "probes = {}", t.max_probes());
    }

    #[test]
    fn element_routes_and_gpu_kernel_agrees() {
        let t = Arc::new(RoutingTableV6::random(8, 500, 16));
        let mut el = LookupIP6::new(t.clone(), 8);
        let (nls, insp) = ctx_harness();
        let dst = 0x2001_0db8u128 << 96 | 0x1234;
        let mut f = vec![0u8; 80];
        FrameBuilder::default().build_ipv6(&mut f, 80, 1, dst);
        let mut pkt = Packet::from_bytes(&f);
        let (res, anno_set) = run_one_anno(&mut el, &nls, &insp, &mut pkt);
        assert_eq!(res, PacketResult::Out(0));
        let expect = u64::from(t.lookup(dst).unwrap() % 8);
        assert_eq!(anno_set.get(anno::IFACE_OUT), expect);

        // Same dst through the kernel.
        let spec = el.offload().unwrap();
        let seg = dst.to_be_bytes();
        let (staged, out_len) = KernelIo::stage(&[&seg], &[8]);
        let mut out = vec![0u8; out_len];
        (spec.kernel)(KernelIo::parse(&staged, &mut out));
        assert_eq!(u64::from_le_bytes(out[0..8].try_into().unwrap()), expect);
    }
}
