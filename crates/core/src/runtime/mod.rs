//! Runtimes: how pipelines, NICs, devices, and threads come together.
//!
//! * [`des`] — the deterministic discrete-event runtime used by every
//!   experiment: simulated worker cores, device threads, NIC ports, and
//!   traffic sources over calibrated costs.
//! * [`live`] — the same element graphs on real OS threads with channels,
//!   demonstrating the framework as an actual concurrent packet processor.

pub mod des;
pub mod live;

use std::sync::Arc;

use nba_io::TrafficConfig;
use nba_sim::{CostModel, Time, Topology};

use crate::element::ComputeMode;
use crate::graph::{BranchPolicy, ElementGraph};
use crate::lb::SharedBalancer;
use crate::nls::NodeLocalStorage;
use crate::stats::{LatencyHistogram, Snapshot};
use crate::telemetry::{ElementProfile, TelemetryConfig, TimeSample, TraceEvent};

/// Context available to pipeline builders.
pub struct BuildCtx {
    /// Worker index the replica is built for.
    pub worker: usize,
    /// NUMA node of that worker.
    pub socket: usize,
    /// Node-local storage of that node (share big tables here).
    pub nls: NodeLocalStorage,
    /// The shared load balancer for this run.
    pub balancer: SharedBalancer,
    /// Branch policy the graph should be built with.
    pub policy: BranchPolicy,
}

/// Builds one worker's pipeline replica (§3.2 "replicated pipelines").
pub type PipelineBuilder = Arc<dyn Fn(&BuildCtx) -> ElementGraph + Send + Sync>;

/// Framework-level configuration of a run.
#[derive(Clone)]
pub struct RuntimeConfig {
    /// The machine shape (Table 3 by default).
    pub topology: Topology,
    /// Calibrated cost constants.
    pub cost: CostModel,
    /// Worker threads per socket; the paper dedicates the last core of each
    /// socket to the device thread, so at most `cores - 1`.
    pub workers_per_socket: u32,
    /// RX burst size (packets fetched per IO-loop iteration).
    pub io_batch: usize,
    /// Computation batch size (packets per batch object; Figure 9 knob).
    pub comp_batch: usize,
    /// Max packet batches aggregated into one offload task (§3.3: 32).
    pub offload_aggregate: usize,
    /// How long a partial aggregate may wait for more batches before the
    /// device thread launches it anyway (bounds GPU-path latency at low
    /// load; the dominant term of Figure 14's GPU latencies).
    pub offload_agg_timeout: Time,
    /// Maximum offload tasks in flight on a device at once (enough to keep
    /// the three engines pipelined; beyond this the device thread defers
    /// launches and backpressure propagates to the RX rings).
    pub gpu_max_inflight: usize,
    /// Maximum batches the device thread buffers across aggregates before
    /// it stops draining its task queue (second-level backpressure).
    pub device_backlog_batches: usize,
    /// Fuse chains of compatible offloadable elements into one device
    /// round-trip, reusing the GPU-resident datablock (the optimization
    /// §3.3 leaves as future work; off by default to match the paper's
    /// evaluated implementation).
    pub datablock_reuse: bool,
    /// Branch handling policy (Figures 1/10 knob).
    pub branch_policy: BranchPolicy,
    /// Whether heavy payload computation really executes.
    pub compute: ComputeMode,
    /// Packet buffers per NUMA node.
    pub pool_size: usize,
    /// RX descriptor ring depth per queue.
    pub rxq_depth: usize,
    /// Idle worker re-poll interval.
    pub poll_interval: Time,
    /// Traffic-source batching window (smaller = finer latency resolution).
    pub gen_window: Time,
    /// Constant external round-trip component added to measured latencies
    /// (generator NIC, wire, and switch of the paper's testbed).
    pub external_latency: Time,
    /// Measurement starts after this much virtual time.
    pub warmup: Time,
    /// Measurement window length.
    pub measure: Time,
    /// Telemetry: time-series sampling interval and trace capacity.
    /// Telemetry never perturbs the simulation — a run produces identical
    /// throughput with it on or off.
    pub telemetry: TelemetryConfig,
    /// Fault injection plan and recovery knobs (watchdog, retries, circuit
    /// breaker). The default plan is inactive: no draws are made and the
    /// run is bit-identical to a build without the fault machinery.
    pub fault: crate::fault::FaultConfig,
    /// Capture a [`crate::capture::TxRecord`] for every transmitted packet
    /// into [`RunReport::tx_capture`] (conformance testing only; off by
    /// default because it clones every frame).
    pub capture: bool,
    /// The decision-audit plane: balancer decision log, per-stage offload
    /// histograms, cost-model drift detection. Fully off by default so
    /// un-audited runs stay bit-identical.
    pub audit: crate::audit::AuditConfig,
    /// Declarative latency/throughput budgets burned down sample window by
    /// sample window (None = no SLO accounting).
    pub slo: Option<crate::audit::SloConfig>,
    /// Flight-recorder dump policy for drift events (the DES runtime has
    /// no per-shard event rings; dumps carry the gauge snapshot and the
    /// drift reason).
    pub flight: crate::introspect::FlightConfig,
    /// Record every flow-table operation into the run's
    /// [`crate::flow::FlowOpsLog`] (conformance testing only; off by
    /// default because stateful apps journal per packet).
    pub flow_journal: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            topology: Topology::paper_testbed(),
            cost: CostModel::paper_default(),
            workers_per_socket: 7,
            io_batch: 64,
            comp_batch: 64,
            offload_aggregate: 32,
            offload_agg_timeout: Time::from_us(150),
            gpu_max_inflight: 6,
            device_backlog_batches: 128,
            datablock_reuse: false,
            branch_policy: BranchPolicy::Predict,
            compute: ComputeMode::HeadersOnly,
            pool_size: 1 << 17,
            rxq_depth: 1024,
            poll_interval: Time::from_us(2),
            gen_window: Time::from_us(4),
            external_latency: Time::from_us(14),
            warmup: Time::from_ms(20),
            measure: Time::from_ms(50),
            telemetry: TelemetryConfig::default(),
            fault: crate::fault::FaultConfig::default(),
            capture: false,
            audit: crate::audit::AuditConfig::default(),
            slo: None,
            flight: crate::introspect::FlightConfig::default(),
            flow_journal: false,
        }
    }
}

impl RuntimeConfig {
    /// A fast configuration on the small topology for unit/integration
    /// tests: full computation, short windows.
    pub fn test_default() -> RuntimeConfig {
        RuntimeConfig {
            topology: Topology::small(),
            workers_per_socket: 3,
            compute: ComputeMode::Full,
            warmup: Time::from_ms(2),
            measure: Time::from_ms(10),
            pool_size: 1 << 15,
            ..RuntimeConfig::default()
        }
    }

    /// Total worker count over all sockets.
    pub fn total_workers(&self) -> usize {
        self.topology.sockets.len() * self.workers_per_socket as usize
    }
}

/// The result of one simulated run, measured over the window after warmup.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Length of the measurement window.
    pub duration: Time,
    /// Transmitted frame gigabits per second (the paper's headline metric).
    pub tx_gbps: f64,
    /// Transmitted packets in the window.
    pub tx_packets: u64,
    /// Offered (generated) packets in the window.
    pub offered_packets: u64,
    /// Offered frame gigabits per second.
    pub offered_gbps: f64,
    /// RX-queue drops in the window (overload signal).
    pub rx_dropped: u64,
    /// Counter deltas over the window.
    pub window: Snapshot,
    /// Round-trip latency distribution (recorded after warmup).
    pub latency: LatencyHistogram,
    /// Final offloading fraction of the shared balancer.
    pub final_w: f64,
    /// Per-GPU busy statistics.
    pub gpu: Vec<nba_gpu::TimelineStats>,
    /// Per-element work profiles, merged across workers and sorted by node
    /// (whole run, warmup included).
    pub elements: Vec<ElementProfile>,
    /// Periodic samples over the whole run (empty when sampling is off).
    pub samples: Vec<TimeSample>,
    /// Batch-lifecycle trace events, merged across workers/devices and
    /// sorted by time (empty unless tracing was enabled).
    pub trace: Vec<TraceEvent>,
    /// Whole-run counter totals (for reconciling element profiles against
    /// aggregate counters).
    pub totals: Snapshot,
    /// Fault-injection and recovery accounting: counter snapshot plus the
    /// device quarantine intervals (all-zero/empty on a clean run).
    pub faults: crate::fault::FaultReport,
    /// Per-packet TX conformance records of the whole run (empty unless
    /// [`RuntimeConfig::capture`] was set).
    pub tx_capture: Vec<crate::capture::TxRecord>,
    /// Per-stage offload decomposition, merged across devices (None unless
    /// [`crate::audit::AuditConfig::stage_stats`] was on).
    pub stages: Option<crate::audit::StageProfiles>,
    /// Cost-model drift accounting (None unless drift detection was on).
    pub drift: Option<crate::audit::DriftReport>,
    /// SLO budget verdict (None unless an SLO was configured).
    pub slo: Option<crate::audit::SloReport>,
    /// The balancer's decision audit log (None unless enabled on the
    /// balancer before the run).
    pub decisions: Option<crate::audit::DecisionLog>,
    /// Flight dumps raised during the run (drift events).
    pub flight: Vec<crate::introspect::FlightDump>,
    /// Self-healing plane: final worker states, the supervisor's replayable
    /// transition log, and shed/loss accounting (all-clean on a fault-free
    /// run; the DES mirrors the live supervisor's report).
    pub health: crate::supervise::HealthReport,
    /// Stateful-app flow plane: per-shard flow-table counters and (when
    /// [`RuntimeConfig::flow_journal`] was on) the merged op journal.
    /// `None` when no stateful element ran.
    pub flows: Option<crate::flow::FlowReport>,
}

impl RunReport {
    /// Millions of packets per second transmitted.
    pub fn tx_mpps(&self) -> f64 {
        self.tx_packets as f64 / self.duration.as_secs_f64() / 1e6
    }
}

/// Convenience: one traffic config replicated across every port.
pub fn traffic_per_port(topology: &Topology, t: &TrafficConfig) -> Vec<TrafficConfig> {
    (0..topology.ports.len())
        .map(|i| TrafficConfig {
            seed: t
                .seed
                .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            ..t.clone()
        })
        .collect()
}
