//! Telemetry: per-element profiles, run time-series, batch-lifecycle
//! traces, and dependency-free exporters.
//!
//! Three observation layers, all designed to never perturb the simulation:
//!
//! * **Per-element profiles** — every [`crate::graph::ElementGraph`] node
//!   accumulates batches, packets, drops, and busy time as it processes
//!   (virtual time in the DES runtime, wall time in the live runtime).
//!   Always on; the accumulators are plain adds on the traversal path.
//! * **Run time-series** — a read-only sampler records a [`TimeSample`]
//!   every [`TelemetryConfig::sample_interval`]: windowed throughput, drop
//!   counts, the latency EWMA, per-GPU busy fractions, and the shared
//!   balancer's offloading fraction `w` (the Figure 12/13 traces).
//! * **Batch-lifecycle traces** — an opt-in bounded ring of
//!   [`TraceEvent`]s following batches from RX through element hops,
//!   branch misses, and the offload round trip to TX. Zero overhead when
//!   [`TelemetryConfig::trace_capacity`] is 0 (the buffer does not exist).
//!
//! Exporters are dependency-free: JSONL writers for each stream and a
//! Prometheus text rendering of a [`crate::runtime::RunReport`].
//! Determinism contract: a run with telemetry fully enabled produces a
//! bit-identical throughput report to the same run with it disabled —
//! observation only reads simulation state and writes side tables.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nba_sim::Time;

use crate::runtime::RunReport;
use crate::stats::LatencyHistogram;

/// Telemetry knobs of a run (part of [`crate::runtime::RuntimeConfig`]).
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Time-series sampling interval; `None` disables the sampler.
    pub sample_interval: Option<Time>,
    /// Capacity (events) of each batch-lifecycle trace ring; 0 disables
    /// tracing entirely — no buffers are allocated, no ids are stamped.
    pub trace_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sample_interval: Some(Time::from_ms(2)),
            trace_capacity: 0,
        }
    }
}

impl TelemetryConfig {
    /// Everything off: no sampler, no tracing (profiles are always on).
    pub fn off() -> TelemetryConfig {
        TelemetryConfig {
            sample_interval: None,
            trace_capacity: 0,
        }
    }
}

/// Work accumulated by one element graph node (internal accumulator; the
/// exported form is [`ElementProfile`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct ProfileAcc {
    pub batches: u64,
    pub packets: u64,
    pub drops: u64,
    pub cycles: u64,
    pub busy_ns: u64,
    /// Per-visit service-time distribution in nanoseconds.
    pub service: LatencyHistogram,
}

/// Per-element work totals over a whole run (warmup included).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementProfile {
    /// Node index in the element graph.
    pub node: usize,
    /// Element class name.
    pub element: &'static str,
    /// Batches the element processed (CPU-side visits).
    pub batches: u64,
    /// Packets presented to the element.
    pub packets: u64,
    /// Packets the element dropped.
    pub drops: u64,
    /// Modeled CPU cycles charged while the element held the batch.
    pub cycles: u64,
    /// Busy time: virtual (cycle-derived) in the DES runtime, wall-clock
    /// in the live runtime.
    pub busy: Time,
    /// Per-visit service-time distribution in nanoseconds (one sample per
    /// CPU-side batch visit; GPU-resumed visits are not sampled — their
    /// share lives on the GPU timeline). Mergeable across workers.
    pub latency: LatencyHistogram,
}

/// Merges per-worker profile lists into per-node totals (summed across
/// replicas, ordered by node index). Service-time histograms merge
/// losslessly: bucket counts add.
pub fn merge_profiles(
    per_worker: impl IntoIterator<Item = Vec<ElementProfile>>,
) -> Vec<ElementProfile> {
    let mut merged: Vec<ElementProfile> = Vec::new();
    for profiles in per_worker {
        for p in profiles {
            match merged.iter_mut().find(|m| m.node == p.node) {
                Some(m) => {
                    m.batches += p.batches;
                    m.packets += p.packets;
                    m.drops += p.drops;
                    m.cycles += p.cycles;
                    m.busy += p.busy;
                    m.latency.merge(&p.latency);
                }
                None => merged.push(p),
            }
        }
    }
    merged.sort_by_key(|p| p.node);
    merged
}

/// Merges per-worker latency-histogram shards into one distribution.
/// Lossless: bucket counts add, min/max/sum fold, so report-time merging of
/// shared-nothing shards loses nothing over a single global histogram.
pub fn merge_histograms(shards: impl IntoIterator<Item = LatencyHistogram>) -> LatencyHistogram {
    let mut merged = LatencyHistogram::new();
    for shard in shards {
        merged.merge(&shard);
    }
    merged
}

/// A run-wide causal span-id allocator. Span ids are unique across every
/// thread of one run (workers share the allocator through their graph
/// replicas), strictly positive, and dense — 0 is reserved for "no span"
/// so a zeroed [`TraceEvent`] means tracing was off.
///
/// Cloning shares the counter; `next()` is a single relaxed `fetch_add`,
/// cheap enough to sit on the traced hot path and absent from the untraced
/// one (allocation only happens when a trace buffer exists).
#[derive(Debug, Clone, Default)]
pub struct SpanAlloc(Arc<AtomicU64>);

impl SpanAlloc {
    /// A fresh allocator starting at span id 1.
    pub fn new() -> SpanAlloc {
        SpanAlloc::default()
    }

    /// Allocates the next span id (never 0).
    pub fn next(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// Per-shard gauges sampled alongside each [`TimeSample`]: the state of one
/// worker's RX ring and balancer at the sample instant.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSample {
    /// Worker (shard) index the gauges belong to.
    pub shard: u32,
    /// Packets sitting in the shard's RX rings at the sample instant
    /// (summed over the IO threads feeding it).
    pub ring_occupancy: u64,
    /// Highest RX-ring occupancy observed so far (summed over rings).
    pub ring_high_water: u64,
    /// Cumulative enqueue failures (full-ring refusals) on the shard's RX
    /// rings.
    pub enqueue_failed: u64,
    /// Cumulative packets shed toward this shard by the IO threads'
    /// overload policy (drop-tail / priority / probabilistic).
    pub shed: u64,
    /// The shard balancer's offloading fraction `w` at the sample instant
    /// (equals the shared `w` under `lb::shared`).
    pub w: f64,
}

/// One point of the run time-series.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSample {
    /// Sample time: virtual in the DES runtime, elapsed wall time in the
    /// live runtime.
    pub t: Time,
    /// Cumulative packets transmitted at `t` (monotone).
    pub tx_packets: u64,
    /// Transmit rate over the window since the previous sample, in Mpps.
    pub tx_mpps: f64,
    /// Transmit rate over the window, in frame Gbps.
    pub tx_gbps: f64,
    /// Cumulative pipeline drops at `t`.
    pub dropped: u64,
    /// Cumulative RX-ring drops at `t`.
    pub rx_dropped: u64,
    /// Worst per-worker latency EWMA at `t`, nanoseconds.
    pub latency_ewma_ns: u64,
    /// Cumulative batches offloaded at `t`.
    pub offloaded_batches: u64,
    /// The shared balancer's offloading fraction `w` at `t`.
    pub offload_fraction: f64,
    /// Per-GPU compute-engine busy fraction over the window.
    pub gpu_busy: Vec<f64>,
    /// Per-shard ring/balancer gauges at `t` (live runtime only; empty in
    /// the DES runtime, whose rings are simulated).
    pub shards: Vec<ShardSample>,
    /// SLO burn accounting for this window (`None` unless an SLO is
    /// configured on the run).
    pub slo: Option<crate::audit::SloSample>,
}

/// What happened to a batch at one point of its life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// An IO thread Toeplitz-steered a burst of packets into a worker's
    /// SPSC ring (live runtime only; `worker` is the destination shard,
    /// `node` carries the IO thread index).
    Steer,
    /// Packets fetched from RX queues and wrapped into the batch.
    Rx,
    /// An element processed the batch.
    Element,
    /// The batch hit a real branch (packets split over several ports).
    Branch,
    /// Packets diverged from the predicted output port.
    BranchMiss,
    /// The batch suspended at an offloadable element and was shipped to
    /// the device thread.
    OffloadEnqueue,
    /// The device thread launched the batch (inside an aggregated task).
    OffloadLaunch,
    /// The device thread retried the task after a transient failure.
    OffloadRetry,
    /// The offload round trip completed; the pipeline resumes.
    OffloadComplete,
    /// The offload failed terminally and the batch fell back to the CPU
    /// path.
    OffloadFallback,
    /// Packets from the batch were transmitted.
    Tx,
    /// Packets from the batch were dropped.
    Drop,
}

impl TraceEventKind {
    /// Stable lowercase name used by the exporters.
    pub fn as_str(&self) -> &'static str {
        match self {
            TraceEventKind::Steer => "steer",
            TraceEventKind::Rx => "rx",
            TraceEventKind::Element => "element",
            TraceEventKind::Branch => "branch",
            TraceEventKind::BranchMiss => "branch_miss",
            TraceEventKind::OffloadEnqueue => "offload_enqueue",
            TraceEventKind::OffloadLaunch => "offload_launch",
            TraceEventKind::OffloadRetry => "offload_retry",
            TraceEventKind::OffloadComplete => "offload_complete",
            TraceEventKind::OffloadFallback => "offload_fallback",
            TraceEventKind::Tx => "tx",
            TraceEventKind::Drop => "drop",
        }
    }
}

/// One batch-lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event time (virtual in DES, elapsed wall time in live).
    pub t: Time,
    /// Worker that owned the batch (or shipped it, for device events).
    pub worker: u32,
    /// The batch's trace id (stamped at RX; 0 for split offspring).
    pub batch: u64,
    /// Graph node involved, if any.
    pub node: Option<u32>,
    /// What happened.
    pub kind: TraceEventKind,
    /// Packets involved.
    pub packets: u32,
    /// How long the event's work took ([`TraceEventKind::Element`] visits:
    /// cycle-derived in DES, wall clock in live; zero for point events).
    pub dur: Time,
    /// This event's causal span id ([`SpanAlloc`]; 0 when span tracing is
    /// off — legacy traces stay valid with both fields zeroed).
    pub span: u64,
    /// Span id of the causal parent (0 for roots: an RX with no recorded
    /// steer, or any event with span tracing off).
    pub parent: u64,
}

/// A bounded ring of [`TraceEvent`]s: pushes never allocate past capacity,
/// the oldest events are overwritten and counted.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: Vec<TraceEvent>,
    cap: usize,
    next: usize,
    overwritten: u64,
}

impl TraceBuffer {
    /// A ring holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0 (callers gate on the config instead).
    pub fn new(capacity: usize) -> TraceBuffer {
        assert!(capacity > 0, "trace buffer needs nonzero capacity");
        TraceBuffer {
            events: Vec::with_capacity(capacity.min(4096)),
            cap: capacity,
            next: 0,
            overwritten: 0,
        }
    }

    /// Appends an event, overwriting the oldest once full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are held.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events that were overwritten after the ring filled.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Consumes the ring, returning events in arrival order.
    pub fn into_events(mut self) -> Vec<TraceEvent> {
        if self.overwritten > 0 {
            self.events.rotate_left(self.next);
        }
        self.events
    }
}

// ---------------------------------------------------------------------------
// Exporters: dependency-free JSONL and Prometheus text renderers.
// ---------------------------------------------------------------------------

/// Escapes a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Finite JSON number or `0` (JSON has no NaN/Infinity).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Renders per-element profiles as one JSON object per line. Latency
/// fields are nanoseconds (the `_ns` suffix convention, see DESIGN.md).
pub fn profiles_to_jsonl(profiles: &[ElementProfile]) -> String {
    let mut out = String::new();
    for p in profiles {
        out.push_str(&format!(
            "{{\"node\":{},\"element\":\"{}\",\"batches\":{},\"packets\":{},\"drops\":{},\"cycles\":{},\"busy_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}\n",
            p.node,
            json_escape(p.element),
            p.batches,
            p.packets,
            p.drops,
            p.cycles,
            p.busy.as_ns(),
            p.latency.percentile_ns(50.0),
            p.latency.percentile_ns(99.0),
        ));
    }
    out
}

/// Renders the time-series as one JSON object per line.
pub fn samples_to_jsonl(samples: &[TimeSample]) -> String {
    let mut out = String::new();
    for s in samples {
        let gpu: Vec<String> = s.gpu_busy.iter().map(|&g| json_f64(g)).collect();
        let shards: Vec<String> = s
            .shards
            .iter()
            .map(|sh| {
                format!(
                    "{{\"shard\":{},\"ring_occupancy\":{},\"ring_high_water\":{},\"enqueue_failed\":{},\"shed\":{},\"w\":{}}}",
                    sh.shard,
                    sh.ring_occupancy,
                    sh.ring_high_water,
                    sh.enqueue_failed,
                    sh.shed,
                    json_f64(sh.w),
                )
            })
            .collect();
        let slo = match &s.slo {
            None => String::from("null"),
            Some(sl) => format!(
                "{{\"latency_ok\":{},\"throughput_ok\":{},\"latency_burn\":{},\"throughput_burn\":{}}}",
                sl.latency_ok,
                sl.throughput_ok,
                json_f64(sl.latency_burn),
                json_f64(sl.throughput_burn),
            ),
        };
        out.push_str(&format!(
            "{{\"t_us\":{},\"tx_packets\":{},\"tx_mpps\":{},\"tx_gbps\":{},\"dropped\":{},\"rx_dropped\":{},\"latency_ewma_ns\":{},\"offloaded_batches\":{},\"w\":{},\"gpu_busy\":[{}],\"shards\":[{}],\"slo\":{}}}\n",
            s.t.as_ns() / 1000,
            s.tx_packets,
            json_f64(s.tx_mpps),
            json_f64(s.tx_gbps),
            s.dropped,
            s.rx_dropped,
            s.latency_ewma_ns,
            s.offloaded_batches,
            json_f64(s.offload_fraction),
            gpu.join(","),
            shards.join(","),
            slo,
        ));
    }
    out
}

/// Renders a batch-lifecycle trace as one JSON object per line.
pub fn trace_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&trace_event_json(e));
        out.push('\n');
    }
    out
}

/// One [`TraceEvent`] as a standalone JSON object (the JSONL line without
/// its newline) — shared by the JSONL exporter and the flight recorder.
pub fn trace_event_json(e: &TraceEvent) -> String {
    let node = match e.node {
        Some(n) => n.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"t_ns\":{},\"worker\":{},\"batch\":{},\"node\":{},\"kind\":\"{}\",\"packets\":{},\"dur_ns\":{},\"span\":{},\"parent\":{}}}",
        e.t.as_ns(),
        e.worker,
        e.batch,
        node,
        e.kind.as_str(),
        e.packets,
        e.dur.as_ns(),
        e.span,
        e.parent,
    )
}

// ---------------------------------------------------------------------------
// Chrome Trace Event Format (Perfetto) exporter.
// ---------------------------------------------------------------------------

/// Pseudo thread id for the device thread's events (`OffloadLaunch` runs on
/// the device, not on the worker that shipped the batch).
const CHROME_DEVICE_TID: u32 = 10_000;

/// Base pseudo thread id for IO threads (`Steer` events render on
/// `CHROME_IO_TID_BASE + io_index`).
const CHROME_IO_TID_BASE: u32 = 20_000;

/// One emitted Chrome trace record under construction.
struct ChromeEvent {
    ph: char,
    ts_ns: u64,
    tid: u32,
    name: String,
    extra: String,
}

impl ChromeEvent {
    fn render(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"ph\":\"{}\",\"ts\":{}.{:03},\"pid\":0,\"tid\":{},\"name\":\"{}\"{}}}",
            self.ph,
            self.ts_ns / 1000,
            self.ts_ns % 1000,
            self.tid,
            json_escape(&self.name),
            self.extra,
        ));
    }
}

/// Renders a batch-lifecycle trace in the Chrome Trace Event Format
/// (loadable in Perfetto / `chrome://tracing`).
///
/// * [`TraceEventKind::Element`] visits become paired `B`/`E` duration
///   slices named after the element class (`elements` maps node index to
///   name; unknown nodes render as `node<N>`). Within one worker step the
///   DES stamps every hop at the same virtual instant, so slices are laid
///   out sequentially from a per-thread cursor — faithful to the
///   run-to-completion model, where a core executes its hops serially.
/// * RX/TX/branch/drop events become thread-scoped instants (`i`).
/// * The offload handoff becomes a flow arrow: flow-start `s` at
///   `OffloadEnqueue` on the worker thread, flow-step `t` at
///   `OffloadLaunch` (and any `OffloadRetry`) on the device pseudo-thread,
///   flow-finish `f` at `OffloadComplete`/`OffloadFallback` back on the
///   worker — each anchored in a zero-length `B`/`E` slice so Perfetto has
///   a slice to attach the arrow to. When the trace carries causal span
///   ids (any event with `span != 0`), arrows are bound by the enqueue
///   span resolved through parent links — exact even when a batch offloads
///   repeatedly; legacy traces fall back to the batch-id heuristic.
/// * With spans, IO→worker handoffs render too: `Steer` events become
///   flow-starts on per-IO pseudo-threads (`io <n>`) finished by the RX
///   that first drained the steered ring.
/// * `M` metadata records name the process and every thread.
///
/// Timestamps are microseconds with nanosecond precision (the format's
/// unit); all events share `pid` 0.
pub fn trace_to_chrome(events: &[TraceEvent], elements: &[ElementProfile]) -> String {
    let name_of = |node: u32| -> String {
        elements
            .iter()
            .find(|p| p.node == node as usize)
            .map(|p| p.element.to_string())
            .unwrap_or_else(|| format!("node{node}"))
    };
    // Stable sort by time: per-tid cursors need non-decreasing input, and
    // arrival order breaks ties the way the run actually interleaved.
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.t);

    // Causal span index, used to key offload flow arrows when the trace
    // carries span ids: every arrow of one offload round trip binds to the
    // round trip's enqueue span, resolved by walking parent links.
    let spans_on = events.iter().any(|e| e.span != 0);
    let mut span_parent: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    let mut enqueue_spans: std::collections::HashSet<u64> = std::collections::HashSet::new();
    if spans_on {
        for e in events {
            if e.span != 0 {
                span_parent.insert(e.span, e.parent);
                if e.kind == TraceEventKind::OffloadEnqueue {
                    enqueue_spans.insert(e.span);
                }
            }
        }
    }
    let offload_flow_id = |e: &TraceEvent| -> u64 {
        if !spans_on {
            return e.batch;
        }
        // Walk ancestors (complete → launch → enqueue) to the enqueue span.
        let mut p = if e.kind == TraceEventKind::OffloadEnqueue {
            e.span
        } else {
            e.parent
        };
        for _ in 0..4 {
            if p == 0 || enqueue_spans.contains(&p) {
                break;
            }
            p = span_parent.get(&p).copied().unwrap_or(0);
        }
        if p != 0 {
            p
        } else if e.span != 0 {
            e.span
        } else {
            e.batch
        }
    };

    // Emits a zero-length anchor slice plus the flow event it anchors (a
    // flow arrow must attach to a slice on its thread).
    #[allow(clippy::too_many_arguments)]
    fn push_flow(
        out: &mut Vec<ChromeEvent>,
        tid: u32,
        args: &str,
        name: &str,
        ph: char,
        id: u64,
        ts: u64,
        end: u64,
    ) {
        out.push(ChromeEvent {
            ph: 'B',
            ts_ns: ts,
            tid,
            name: name.into(),
            extra: format!(",\"cat\":\"offload\"{args}"),
        });
        out.push(ChromeEvent {
            ph,
            ts_ns: ts,
            tid,
            name: "offload".into(),
            extra: format!(",\"cat\":\"offload\",\"id\":{id},\"bp\":\"e\""),
        });
        out.push(ChromeEvent {
            ph: 'E',
            ts_ns: end,
            tid,
            name: name.into(),
            extra: ",\"cat\":\"offload\"".into(),
        });
    }

    let mut out_events: Vec<ChromeEvent> = Vec::new();
    // Per-tid layout cursor in nanoseconds (see the doc comment).
    let mut cursor: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    let mut tids: Vec<u32> = Vec::new();
    for e in &sorted {
        let tid = match e.kind {
            TraceEventKind::OffloadLaunch | TraceEventKind::OffloadRetry => CHROME_DEVICE_TID,
            TraceEventKind::Steer => CHROME_IO_TID_BASE + e.node.unwrap_or(0),
            _ => e.worker,
        };
        if !tids.contains(&tid) {
            tids.push(tid);
        }
        let cur = cursor.entry(tid).or_insert(0);
        let ts = (*cur).max(e.t.as_ns());
        let args = format!(
            ",\"args\":{{\"batch\":{},\"packets\":{},\"worker\":{},\"span\":{},\"parent\":{}}}",
            e.batch, e.packets, e.worker, e.span, e.parent
        );
        match e.kind {
            TraceEventKind::Element => {
                let name = e.node.map(name_of).unwrap_or_else(|| "element".into());
                let end = ts + e.dur.as_ns();
                out_events.push(ChromeEvent {
                    ph: 'B',
                    ts_ns: ts,
                    tid,
                    name: name.clone(),
                    extra: format!(",\"cat\":\"element\"{args}"),
                });
                out_events.push(ChromeEvent {
                    ph: 'E',
                    ts_ns: end,
                    tid,
                    name,
                    extra: ",\"cat\":\"element\"".into(),
                });
                *cur = end;
            }
            TraceEventKind::OffloadEnqueue
            | TraceEventKind::OffloadLaunch
            | TraceEventKind::OffloadRetry
            | TraceEventKind::OffloadComplete
            | TraceEventKind::OffloadFallback => {
                let (name, ph) = match e.kind {
                    TraceEventKind::OffloadEnqueue => ("offload enqueue", 's'),
                    TraceEventKind::OffloadLaunch => ("offload launch", 't'),
                    TraceEventKind::OffloadRetry => ("offload retry", 't'),
                    TraceEventKind::OffloadFallback => ("offload fallback", 'f'),
                    _ => ("offload complete", 'f'),
                };
                let end = ts + e.dur.as_ns();
                push_flow(
                    &mut out_events,
                    tid,
                    &args,
                    name,
                    ph,
                    offload_flow_id(e),
                    ts,
                    end,
                );
                *cur = end;
            }
            // IO→worker handoff arrows exist only in span mode: the steer
            // span starts the flow, the RX that drained the ring ends it.
            TraceEventKind::Steer if e.span != 0 => {
                push_flow(&mut out_events, tid, &args, "steer", 's', e.span, ts, ts);
                *cur = ts;
            }
            TraceEventKind::Rx if e.parent != 0 => {
                push_flow(&mut out_events, tid, &args, "rx", 'f', e.parent, ts, ts);
                *cur = ts;
            }
            _ => {
                out_events.push(ChromeEvent {
                    ph: 'i',
                    ts_ns: ts,
                    tid,
                    name: e.kind.as_str().into(),
                    extra: format!(",\"cat\":\"batch\",\"s\":\"t\"{args}"),
                });
                *cur = ts;
            }
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    // Metadata: process and thread names.
    let mut meta = vec![
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"nba\"}}"
            .to_string(),
    ];
    for tid in &tids {
        let tname = if *tid == CHROME_DEVICE_TID {
            "device".to_string()
        } else if *tid >= CHROME_IO_TID_BASE {
            format!("io {}", tid - CHROME_IO_TID_BASE)
        } else {
            format!("worker {tid}")
        };
        meta.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(&tname)
        ));
    }
    for m in meta {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&m);
    }
    for e in &out_events {
        if !first {
            out.push(',');
        }
        first = false;
        e.render(&mut out);
    }
    out.push_str("]}");
    out
}

/// Renders per-element profiles as an aligned text table.
pub fn profile_table(profiles: &[ElementProfile]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>4}  {:<20} {:>12} {:>14} {:>10} {:>14} {:>12} {:>10} {:>10}\n",
        "node", "element", "batches", "packets", "drops", "cycles", "busy", "p50", "p99"
    ));
    for p in profiles {
        out.push_str(&format!(
            "{:>4}  {:<20} {:>12} {:>14} {:>10} {:>14} {:>12} {:>10} {:>10}\n",
            p.node,
            p.element,
            p.batches,
            p.packets,
            p.drops,
            p.cycles,
            format!("{:.3}ms", p.busy.as_ns() as f64 / 1e6),
            format!("{}ns", p.latency.percentile_ns(50.0)),
            format!("{}ns", p.latency.percentile_ns(99.0)),
        ));
    }
    out
}

/// Escapes a label value for the Prometheus text exposition format
/// (backslash, double quote, and line feed must be escaped inside the
/// quoted value).
pub fn prom_label_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn prom_metric(out: &mut String, name: &str, help: &str, kind: &str, value: String) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
    ));
}

/// Renders a [`RunReport`] in the Prometheus text exposition format.
pub fn report_to_prometheus(r: &RunReport) -> String {
    let mut out = String::new();
    prom_metric(
        &mut out,
        "nba_tx_gbps",
        "Transmitted frame gigabits per second over the measurement window",
        "gauge",
        json_f64(r.tx_gbps),
    );
    prom_metric(
        &mut out,
        "nba_tx_mpps",
        "Transmitted packets per second (millions) over the measurement window",
        "gauge",
        json_f64(r.tx_mpps()),
    );
    prom_metric(
        &mut out,
        "nba_offered_gbps",
        "Offered load in gigabits per second",
        "gauge",
        json_f64(r.offered_gbps),
    );
    prom_metric(
        &mut out,
        "nba_tx_packets_total",
        "Packets transmitted in the measurement window",
        "counter",
        r.tx_packets.to_string(),
    );
    prom_metric(
        &mut out,
        "nba_rx_dropped_total",
        "RX-ring drops in the measurement window",
        "counter",
        r.rx_dropped.to_string(),
    );
    prom_metric(
        &mut out,
        "nba_pipeline_dropped_total",
        "Packets dropped inside the pipeline in the measurement window",
        "counter",
        r.window.dropped.to_string(),
    );
    prom_metric(
        &mut out,
        "nba_offload_fraction",
        "Final offloading fraction w of the shared balancer",
        "gauge",
        json_f64(r.final_w),
    );
    prom_metric(
        &mut out,
        "nba_latency_p50_ns",
        "Median round-trip latency in nanoseconds",
        "gauge",
        r.latency.percentile(50.0).as_ns().to_string(),
    );
    prom_metric(
        &mut out,
        "nba_latency_p99_ns",
        "99th-percentile round-trip latency in nanoseconds",
        "gauge",
        r.latency.percentile(99.0).as_ns().to_string(),
    );

    out.push_str("# HELP nba_gpu_tasks_total Offload tasks completed per device\n");
    out.push_str("# TYPE nba_gpu_tasks_total counter\n");
    for (i, g) in r.gpu.iter().enumerate() {
        out.push_str(&format!("nba_gpu_tasks_total{{gpu=\"{i}\"}} {}\n", g.tasks));
    }
    out.push_str("# HELP nba_gpu_kernel_busy_seconds Compute-engine busy time per device\n");
    out.push_str("# TYPE nba_gpu_kernel_busy_seconds counter\n");
    for (i, g) in r.gpu.iter().enumerate() {
        out.push_str(&format!(
            "nba_gpu_kernel_busy_seconds{{gpu=\"{i}\"}} {}\n",
            json_f64(g.kernel_busy.as_secs_f64())
        ));
    }

    out.push_str("# HELP nba_element_packets_total Packets presented to each element\n");
    out.push_str("# TYPE nba_element_packets_total counter\n");
    for p in &r.elements {
        out.push_str(&format!(
            "nba_element_packets_total{{node=\"{}\",element=\"{}\"}} {}\n",
            p.node,
            prom_label_escape(p.element),
            p.packets
        ));
    }
    out.push_str("# HELP nba_element_busy_seconds Busy time accumulated by each element\n");
    out.push_str("# TYPE nba_element_busy_seconds counter\n");
    for p in &r.elements {
        out.push_str(&format!(
            "nba_element_busy_seconds{{node=\"{}\",element=\"{}\"}} {}\n",
            p.node,
            prom_label_escape(p.element),
            json_f64(p.busy.as_secs_f64())
        ));
    }

    // Per-shard ring/balancer gauges at the final sample (live runtime
    // only; the DES runtime leaves `shards` empty).
    if let Some(last) = r.samples.iter().rev().find(|s| !s.shards.is_empty()) {
        let mut shard_metric =
            |name: &str, help: &str, kind: &str, value: &dyn Fn(&ShardSample) -> String| {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
                for sh in &last.shards {
                    out.push_str(&format!("{name}{{shard=\"{}\"}} {}\n", sh.shard, value(sh)));
                }
            };
        shard_metric(
            "nba_ring_occupancy",
            "Packets queued in the shard's RX rings at the last sample",
            "gauge",
            &|sh| sh.ring_occupancy.to_string(),
        );
        shard_metric(
            "nba_ring_high_water",
            "Highest RX-ring occupancy observed by the shard",
            "gauge",
            &|sh| sh.ring_high_water.to_string(),
        );
        shard_metric(
            "nba_ring_enqueue_failed_total",
            "Full-ring enqueue refusals on the shard's RX rings",
            "counter",
            &|sh| sh.enqueue_failed.to_string(),
        );
        shard_metric(
            "nba_shed_total",
            "Packets shed toward the shard by the IO overload policy",
            "counter",
            &|sh| sh.shed.to_string(),
        );
        shard_metric(
            "nba_shard_offload_fraction",
            "The shard balancer's offloading fraction w at the last sample",
            "gauge",
            &|sh| json_f64(sh.w),
        );
    }

    // Self-healing plane: final worker states and shed/loss accounting
    // from the supervisor (live runtime; the DES mirrors the same report).
    if !r.health.states.is_empty() {
        out.push_str(
            "# HELP nba_worker_state Final supervisor state per shard \
             (0=healthy 1=suspect 2=dead 3=recovering)\n# TYPE nba_worker_state gauge\n",
        );
        for (w, st) in r.health.states.iter().enumerate() {
            out.push_str(&format!(
                "nba_worker_state{{shard=\"{w}\",state=\"{}\"}} {}\n",
                st.as_str(),
                st.as_u8()
            ));
        }
    }
    let h = &r.health.stats;
    out.push_str("# HELP nba_shed_packets_total Packets shed by the IO overload policy\n");
    out.push_str("# TYPE nba_shed_packets_total counter\n");
    for (policy, n) in [
        ("drop_tail", h.shed_drop_tail),
        ("priority", h.shed_priority),
        ("probabilistic", h.shed_probabilistic),
    ] {
        out.push_str(&format!(
            "nba_shed_packets_total{{policy=\"{policy}\"}} {n}\n"
        ));
    }
    prom_metric(
        &mut out,
        "nba_lost_in_ring_packets_total",
        "Packets stranded in RX rings of dead workers",
        "counter",
        h.lost_in_ring.to_string(),
    );
    prom_metric(
        &mut out,
        "nba_lost_in_flight_packets_total",
        "Offload completions stranded when their worker died",
        "counter",
        h.lost_in_flight.to_string(),
    );
    prom_metric(
        &mut out,
        "nba_resteers_total",
        "RSS re-steer operations performed by the supervisor",
        "counter",
        h.resteers.to_string(),
    );
    prom_metric(
        &mut out,
        "nba_resteer_buckets_moved_total",
        "RSS indirection buckets moved across all re-steers",
        "counter",
        h.buckets_moved.to_string(),
    );
    prom_metric(
        &mut out,
        "nba_worker_respawns_total",
        "Crashed workers respawned by the supervisor",
        "counter",
        h.respawns.to_string(),
    );
    prom_metric(
        &mut out,
        "nba_ring_disconnects_total",
        "Dead worker rings observed by IO threads",
        "counter",
        h.ring_disconnects.to_string(),
    );

    // Stateful flow plane (absent unless a stateful element ran, so
    // flow-free runs keep their exact exposition bytes).
    if let Some(fl) = &r.flows {
        out.push_str("# HELP nba_flows_live Live flow-table entries per worker shard\n");
        out.push_str("# TYPE nba_flows_live gauge\n");
        for (w, s) in &fl.shards {
            out.push_str(&format!("nba_flows_live{{shard=\"{w}\"}} {}\n", s.live));
        }
        let t = fl.totals();
        out.push_str("# HELP nba_flow_evictions_total Flow-table evictions by reason\n");
        out.push_str("# TYPE nba_flow_evictions_total counter\n");
        for (reason, n) in [
            ("idle", t.evict_idle),
            ("embryonic", t.evict_embryonic),
            ("closed", t.evict_closed),
            ("worker_death", t.evict_death),
        ] {
            out.push_str(&format!(
                "nba_flow_evictions_total{{reason=\"{reason}\"}} {n}\n"
            ));
        }
        prom_metric(
            &mut out,
            "nba_flow_inserts_total",
            "Flow-table insertions across all shards",
            "counter",
            t.inserts.to_string(),
        );
        prom_metric(
            &mut out,
            "nba_flow_table_full_drops_total",
            "Packets dropped because a flow-table shard was full",
            "counter",
            t.table_full_drops.to_string(),
        );
        prom_metric(
            &mut out,
            "nba_flow_migrations_total",
            "Foreign-bucket flows adopted by survivors after a re-steer",
            "counter",
            t.migrated_in.to_string(),
        );
        prom_metric(
            &mut out,
            "nba_nat_ports_in_use",
            "NAT external ports currently bound",
            "gauge",
            t.nat_ports_in_use.to_string(),
        );
    }

    // Fault-tolerance accounting (all zero on a clean run).
    let f = &r.faults.snapshot;
    out.push_str("# HELP nba_fault_injected_total Device faults injected, by kind\n");
    out.push_str("# TYPE nba_fault_injected_total counter\n");
    for (kind, n) in [
        ("timeout", f.injected_timeout),
        ("transient", f.injected_transient),
        ("corrupt", f.injected_corrupt),
        ("device_death", f.injected_dead),
    ] {
        out.push_str(&format!(
            "nba_fault_injected_total{{kind=\"{kind}\"}} {n}\n"
        ));
    }
    prom_metric(
        &mut out,
        "nba_fault_retried_total",
        "Device task attempts retried after a transient error",
        "counter",
        f.retried.to_string(),
    );
    prom_metric(
        &mut out,
        "nba_fault_fell_back_packets_total",
        "Packets re-executed on the CPU path after a device failure",
        "counter",
        f.fell_back_packets.to_string(),
    );
    prom_metric(
        &mut out,
        "nba_fault_dropped_packets_total",
        "Packets lost with poison batches dropped by panic containment",
        "counter",
        f.dropped_packets.to_string(),
    );
    prom_metric(
        &mut out,
        "nba_fault_panics_contained_total",
        "Panics caught by worker/device panic containment",
        "counter",
        f.panics_contained.to_string(),
    );
    prom_metric(
        &mut out,
        "nba_fault_quarantines_total",
        "Times a device circuit breaker tripped into quarantine",
        "counter",
        f.quarantine_entered.to_string(),
    );
    prom_metric(
        &mut out,
        "nba_fault_readmissions_total",
        "Times a half-open probe re-admitted a quarantined device",
        "counter",
        f.quarantine_exited.to_string(),
    );

    // Offload stage decomposition (absent unless stage stats were on).
    if let Some(st) = &r.stages {
        prom_metric(
            &mut out,
            "nba_offload_stage_tasks_total",
            "Offload tasks decomposed into per-stage timings",
            "counter",
            st.tasks.to_string(),
        );
        let mut stage_metric = |name: &str, help: &str, value: &dyn Fn(usize) -> String| {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            for s in crate::audit::OffloadStage::ALL {
                out.push_str(&format!(
                    "{name}{{stage=\"{}\"}} {}\n",
                    s.as_str(),
                    value(s.index())
                ));
            }
        };
        stage_metric(
            "nba_offload_stage_mean_ns",
            "Mean time an offload task spent in each sub-stage",
            &|i| json_f64(st.mean_ns(crate::audit::OffloadStage::ALL[i])),
        );
        stage_metric(
            "nba_offload_stage_p99_ns",
            "99th-percentile time an offload task spent in each sub-stage",
            &|i| st.hist[i].percentile_ns(99.0).to_string(),
        );
        stage_metric(
            "nba_offload_stage_seconds_total",
            "Total time accumulated in each offload sub-stage",
            &|i| json_f64(st.total_ns[i] as f64 / 1e9),
        );
    }

    // Cost-model drift accounting (absent unless drift detection was on).
    if let Some(d) = &r.drift {
        prom_metric(
            &mut out,
            "nba_cost_drift_events_total",
            "Cost-model drift events raised (the detector latches at 1)",
            "counter",
            d.events.to_string(),
        );
        prom_metric(
            &mut out,
            "nba_cost_drift_rel_err",
            "Smoothed relative error between predicted and measured offload cost",
            "gauge",
            json_f64(d.rel_err),
        );
    }

    // SLO budget verdict (absent unless an SLO was configured).
    if let Some(s) = &r.slo {
        prom_metric(
            &mut out,
            "nba_slo_latency_burn",
            "Fraction of the latency error budget burned (>1 = budget blown)",
            "gauge",
            json_f64(s.latency_burn),
        );
        prom_metric(
            &mut out,
            "nba_slo_throughput_burn",
            "Fraction of the throughput error budget burned (>1 = budget blown)",
            "gauge",
            json_f64(s.throughput_burn),
        );
        prom_metric(
            &mut out,
            "nba_slo_windows_total",
            "Sample windows scored against the SLO budgets",
            "counter",
            s.windows.to_string(),
        );
        prom_metric(
            &mut out,
            "nba_slo_latency_violations_total",
            "Sample windows that violated the latency budget",
            "counter",
            s.latency_violations.to_string(),
        );
        prom_metric(
            &mut out,
            "nba_slo_throughput_violations_total",
            "Sample windows that violated the throughput floor",
            "counter",
            s.throughput_violations.to_string(),
        );
        prom_metric(
            &mut out,
            "nba_slo_met",
            "1 when every SLO budget held over the run, else 0",
            "gauge",
            u64::from(s.met).to_string(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, batch: u64) -> TraceEvent {
        TraceEvent {
            t: Time::from_ns(t_ns),
            worker: 0,
            batch,
            node: None,
            kind: TraceEventKind::Rx,
            packets: 1,
            dur: Time::ZERO,
            span: 0,
            parent: 0,
        }
    }

    fn span_ev(t_ns: u64, kind: TraceEventKind, span: u64, parent: u64) -> TraceEvent {
        TraceEvent {
            kind,
            span,
            parent,
            ..ev(t_ns, 1)
        }
    }

    fn profile(node: usize, element: &'static str) -> ElementProfile {
        ElementProfile {
            node,
            element,
            batches: 0,
            packets: 0,
            drops: 0,
            cycles: 0,
            busy: Time::ZERO,
            latency: LatencyHistogram::new(),
        }
    }

    #[test]
    fn trace_ring_overwrites_oldest() {
        let mut tb = TraceBuffer::new(4);
        for i in 0..6 {
            tb.push(ev(i, i));
        }
        assert_eq!(tb.len(), 4);
        assert_eq!(tb.overwritten(), 2);
        let ids: Vec<u64> = tb.into_events().iter().map(|e| e.batch).collect();
        assert_eq!(ids, vec![2, 3, 4, 5]);
    }

    #[test]
    fn trace_ring_preserves_order_when_not_full() {
        let mut tb = TraceBuffer::new(10);
        for i in 0..3 {
            tb.push(ev(i, i));
        }
        assert_eq!(tb.overwritten(), 0);
        let ids: Vec<u64> = tb.into_events().iter().map(|e| e.batch).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn merge_sums_by_node() {
        let a = vec![ElementProfile {
            batches: 1,
            packets: 10,
            drops: 1,
            cycles: 100,
            busy: Time::from_us(1),
            ..profile(0, "A")
        }];
        let b = vec![
            ElementProfile {
                batches: 2,
                packets: 20,
                drops: 0,
                cycles: 50,
                busy: Time::from_us(2),
                ..profile(1, "B")
            },
            ElementProfile {
                batches: 3,
                packets: 30,
                drops: 2,
                cycles: 300,
                busy: Time::from_us(3),
                ..profile(0, "A")
            },
        ];
        let m = merge_profiles([a, b]);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].node, 0);
        assert_eq!(m[0].packets, 40);
        assert_eq!(m[0].drops, 3);
        assert_eq!(m[0].busy, Time::from_us(4));
        assert_eq!(m[1].packets, 20);
    }

    #[test]
    fn jsonl_lines_parse_as_flat_objects() {
        let profiles = vec![ElementProfile {
            batches: 7,
            packets: 448,
            drops: 0,
            cycles: 12345,
            busy: Time::from_us(9),
            ..profile(3, "IPLookup\"quoted\"")
        }];
        let s = profiles_to_jsonl(&profiles);
        assert_eq!(s.lines().count(), 1);
        assert!(s.contains("\\\"quoted\\\""));
        assert!(s.starts_with('{') && s.trim_end().ends_with('}'));

        let samples = vec![TimeSample {
            t: Time::from_ms(2),
            tx_packets: 100,
            tx_mpps: 0.05,
            tx_gbps: f64::NAN, // must not leak NaN into JSON
            dropped: 0,
            rx_dropped: 0,
            latency_ewma_ns: 1500,
            offloaded_batches: 4,
            offload_fraction: 0.5,
            gpu_busy: vec![0.25],
            shards: vec![ShardSample {
                shard: 2,
                ring_occupancy: 17,
                ring_high_water: 64,
                enqueue_failed: 3,
                shed: 5,
                w: 0.75,
            }],
            slo: Some(crate::audit::SloSample {
                latency_ok: true,
                throughput_ok: false,
                latency_burn: 0.5,
                throughput_burn: 2.0,
            }),
        }];
        let s = samples_to_jsonl(&samples);
        assert!(!s.contains("NaN"));
        assert!(s.contains("\"slo\":{\"latency_ok\":true,\"throughput_ok\":false,"));
        assert!(s.contains("\"gpu_busy\":[0.25]"));
        assert!(s.contains("\"shards\":[{\"shard\":2,\"ring_occupancy\":17,"));
        assert!(s.contains("\"enqueue_failed\":3,\"shed\":5,\"w\":0.75}"));

        let s = trace_to_jsonl(&[ev(1000, 42)]);
        assert!(s.contains("\"kind\":\"rx\""));
        assert!(s.contains("\"node\":null"));
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(TraceEventKind::OffloadEnqueue.as_str(), "offload_enqueue");
        assert_eq!(TraceEventKind::BranchMiss.as_str(), "branch_miss");
        assert_eq!(TraceEventKind::Steer.as_str(), "steer");
        assert_eq!(TraceEventKind::OffloadRetry.as_str(), "offload_retry");
        assert_eq!(TraceEventKind::OffloadFallback.as_str(), "offload_fallback");
    }

    #[test]
    fn span_alloc_is_dense_positive_and_shared() {
        let a = SpanAlloc::new();
        let b = a.clone();
        assert_eq!(a.next(), 1, "ids start at 1; 0 means no span");
        assert_eq!(b.next(), 2, "clones share the counter");
        assert_eq!(a.next(), 3);
    }

    #[test]
    fn trace_ring_wraps_repeatedly_with_exact_overwrite_count() {
        // Satellite coverage: wraparound semantics after multiple full
        // laps of the ring, not just one.
        let mut tb = TraceBuffer::new(4);
        for i in 0..11 {
            tb.push(ev(i, i));
        }
        assert_eq!(tb.len(), 4, "len saturates at capacity");
        assert_eq!(tb.overwritten(), 7, "11 pushes into 4 slots lose 7");
        let ids: Vec<u64> = tb.into_events().iter().map(|e| e.batch).collect();
        assert_eq!(ids, vec![7, 8, 9, 10], "survivors in arrival order");
    }

    #[test]
    fn trace_ring_exactly_full_counts_nothing_overwritten() {
        let mut tb = TraceBuffer::new(3);
        for i in 0..3 {
            tb.push(ev(i, i));
        }
        assert_eq!(tb.overwritten(), 0);
        let ids: Vec<u64> = tb.into_events().iter().map(|e| e.batch).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn merge_histograms_handles_unequal_shard_counts() {
        // Two workers vs four workers vs zero: merging shard lists of any
        // length must equal one histogram fed every sample.
        let samples: [&[u64]; 4] = [&[100, 900, 5_000], &[250], &[], &[70_000, 70_000]];
        let mut reference = LatencyHistogram::new();
        let mut shards = Vec::new();
        for shard_samples in samples {
            let mut h = LatencyHistogram::new();
            for &ns in shard_samples {
                h.record_ns(ns);
                reference.record_ns(ns);
            }
            shards.push(h);
        }
        // Unequal counts: merge all four, then a prefix of two, then none.
        let all = merge_histograms(shards.clone());
        for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(all.percentile_ns(p), reference.percentile_ns(p));
        }
        let mut two_ref = LatencyHistogram::new();
        for &ns in samples[0].iter().chain(samples[1]) {
            two_ref.record_ns(ns);
        }
        let two = merge_histograms(shards[..2].to_vec());
        for p in [0.0, 50.0, 100.0] {
            assert_eq!(two.percentile_ns(p), two_ref.percentile_ns(p));
        }
        let none = merge_histograms(Vec::<LatencyHistogram>::new());
        assert_eq!(none.percentile_ns(99.0), 0, "empty merge stays empty");
    }

    #[test]
    fn chrome_spans_key_offload_flows_and_render_io_threads() {
        // A full causal chain: steer(1) → rx(2←1) → enqueue(3←2) →
        // launch(4←3) → retry(5←4) → complete(6←4). Offload arrows must
        // all bind to the enqueue span (3); the steer/rx pair binds to the
        // steer span (1) on an IO pseudo-thread.
        let events = vec![
            span_ev(100, TraceEventKind::Steer, 1, 0),
            span_ev(200, TraceEventKind::Rx, 2, 1),
            span_ev(300, TraceEventKind::OffloadEnqueue, 3, 2),
            span_ev(400, TraceEventKind::OffloadLaunch, 4, 3),
            span_ev(500, TraceEventKind::OffloadRetry, 5, 4),
            span_ev(600, TraceEventKind::OffloadComplete, 6, 4),
            span_ev(700, TraceEventKind::Tx, 6, 0),
        ];
        let mut with_io = events.clone();
        with_io[0].node = Some(1); // steer came from IO thread 1
        let out = trace_to_chrome(&with_io, &[]);
        let doc = crate::json::parse(&out).expect("valid JSON");
        let evs = doc
            .get("traceEvents")
            .and_then(crate::json::Value::as_arr)
            .unwrap()
            .to_vec();
        let flows: Vec<(String, u64, u64)> = evs
            .iter()
            .filter(|e| {
                matches!(
                    e.get("ph").and_then(crate::json::Value::as_str),
                    Some("s") | Some("t") | Some("f")
                )
            })
            .map(|e| {
                (
                    e.get("ph")
                        .and_then(crate::json::Value::as_str)
                        .unwrap()
                        .to_string(),
                    e.get("id").and_then(crate::json::Value::as_u64).unwrap(),
                    e.get("tid").and_then(crate::json::Value::as_u64).unwrap(),
                )
            })
            .collect();
        // Offload round trip: s/t/t/f all keyed by the enqueue span 3,
        // with launch and retry on the device pseudo-thread.
        assert!(flows.contains(&("s".into(), 3, 0)), "{flows:?}");
        assert!(
            flows.contains(&("t".into(), 3, u64::from(CHROME_DEVICE_TID))),
            "{flows:?}"
        );
        assert_eq!(
            flows.iter().filter(|f| f.0 == "t" && f.1 == 3).count(),
            2,
            "launch and retry both step the flow: {flows:?}"
        );
        assert!(flows.contains(&("f".into(), 3, 0)), "{flows:?}");
        // IO handoff: steer starts flow 1 on io tid base+1, rx finishes it.
        let io_tid = u64::from(CHROME_IO_TID_BASE + 1);
        assert!(flows.contains(&("s".into(), 1, io_tid)), "{flows:?}");
        assert!(flows.contains(&("f".into(), 1, 0)), "{flows:?}");
        // The IO pseudo-thread is named.
        assert!(out.contains("\"name\":\"io 1\""));
        // Tx stays an instant so timelines keep their point events.
        assert!(evs.iter().any(|e| {
            e.get("ph").and_then(crate::json::Value::as_str) == Some("i")
                && e.get("name").and_then(crate::json::Value::as_str) == Some("tx")
        }));
    }

    #[test]
    fn chrome_without_spans_keeps_batch_id_flows() {
        // Legacy traces (all spans zero) must render exactly as before:
        // arrows keyed by the batch trace id.
        let mk = |t_ns: u64, kind| TraceEvent {
            kind,
            ..ev(t_ns, 42)
        };
        let events = vec![
            mk(100, TraceEventKind::OffloadEnqueue),
            mk(200, TraceEventKind::OffloadLaunch),
            mk(300, TraceEventKind::OffloadComplete),
        ];
        let out = trace_to_chrome(&events, &[]);
        let doc = crate::json::parse(&out).unwrap();
        let evs = doc
            .get("traceEvents")
            .and_then(crate::json::Value::as_arr)
            .unwrap()
            .to_vec();
        for ph in ["s", "t", "f"] {
            assert!(
                evs.iter().any(|e| {
                    e.get("ph").and_then(crate::json::Value::as_str) == Some(ph)
                        && e.get("id").and_then(crate::json::Value::as_u64) == Some(42)
                }),
                "missing {ph} keyed by batch id"
            );
        }
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        assert_eq!(
            prom_label_escape("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd",
            "backslash, quote, and newline must escape"
        );
        assert_eq!(prom_label_escape("plain"), "plain");
    }
}
